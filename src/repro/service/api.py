"""The HTTP status API and dashboard (no dependencies beyond stdlib).

``python -m repro dashboard --db results.db`` serves, straight out of the
results store:

====================================  ====================================
``GET /healthz``                      liveness + db path
``GET /api/studies``                  study list with progress aggregates
``GET /api/studies/<id>``             spec, status, progress, best-so-far
``GET /api/studies/<id>/batches``     per-batch records (``?since=K`` for
                                      incremental streaming)
``GET /api/studies/<id>/history``     flat evaluations (x, objective, ...)
``GET /api/studies/<id>/curve``       best-so-far objective per simulation
``GET /api/studies/<id>/pareto``      non-dominated front over chosen
                                      metrics (``?metrics=a,b&senses=min,max``)
``GET /api/workers``                  worker heartbeats + lease health +
                                      throughput (rows/s)
``GET /api/jobs``                     queue counts (``?study=<id>``)
``GET /api/metrics``                  merged telemetry snapshots, queue
                                      latency, worker throughput (JSON)
``GET /metrics``                      the same registry in Prometheus text
                                      exposition format
``GET /api/bench``                    ingested BENCH records (``?name=``)
``GET /api/problems``                 the ``list-problems --json`` listing
``GET /api/optimizers``               the ``list-optimizers --json`` listing
``GET /``                             the HTML dashboard
====================================  ====================================

Built on :class:`http.server.ThreadingHTTPServer`; the store's per-thread
connections make concurrent requests safe, and WAL mode means the dashboard
never blocks the drivers and workers writing to the same file.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

import numpy as np

from repro.service.queue import WorkQueue
from repro.service.store import ResultsStore


class ApiError(Exception):
    """An error with an HTTP status (404 unknown study, 400 bad query)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


# ---------------------------------------------------------------------- #
# query helpers (pure functions over the store, unit-testable)            #
# ---------------------------------------------------------------------- #
def _study_or_404(store: ResultsStore, study_id: str) -> dict:
    row = store.study_row(study_id)
    if row is None:
        raise ApiError(404, f"unknown study {study_id!r}")
    return dict(row)


def _eval_value(row: dict, metrics: dict, name: str) -> float:
    if name in ("objective", "violation"):
        return float(row[name])
    if name == "feasible":
        return float(row["feasible"])
    if name in metrics:
        return float(metrics[name])
    raise ApiError(400, f"evaluation has no metric {name!r}; "
                        f"known: objective, violation, feasible, "
                        f"{sorted(metrics)}")


def study_summary(store: ResultsStore, study: dict,
                  sense: str = "min") -> dict:
    rows = store.evaluation_rows(study["study_id"])
    spec = json.loads(study["spec"])
    best = None
    if rows:
        candidates = [r for r in rows if r["feasible"]] or list(rows)
        pick = min if sense != "max" else max
        best_row = pick(candidates, key=lambda r: r["objective"])
        best = {
            "objective": float(best_row["objective"]),
            "feasible": bool(best_row["feasible"]),
            "violation": float(best_row["violation"]),
            "metrics": json.loads(best_row["metrics"]),
            "x": json.loads(best_row["x"]),
            "batch_index": int(best_row["batch_index"]),
        }
    n_batches = len(store.batch_rows(study["study_id"]))
    return {
        "study_id": study["study_id"],
        "status": study["status"],
        "stop_reason": study["stop_reason"],
        "optimizer": spec.get("optimizer"),
        "circuit": spec.get("circuit"),
        "seed": int(study["seed"]),
        "n_batches": n_batches,
        "n_evaluations": len(rows),
        "budget": spec.get("n_simulations"),
        "best": best,
        "created_at": study["created_at"],
        "updated_at": study["updated_at"],
    }


def study_detail(store: ResultsStore, study_id: str,
                 sense: str = "min") -> dict:
    study = _study_or_404(store, study_id)
    detail = study_summary(store, study, sense=sense)
    detail["spec"] = json.loads(study["spec"])
    queue = WorkQueue(store)
    detail["jobs"] = queue.counts(study_id)
    return detail


def study_batches(store: ResultsStore, study_id: str,
                  since: int | None = None) -> list[dict]:
    _study_or_404(store, study_id)
    out = []
    for row in store.batch_rows(study_id, since=since):
        record = json.loads(row["record"])
        evaluations = record.get("evaluations", [])
        objectives = [e["objective"] for e in evaluations]
        out.append({
            "batch_index": int(row["batch_index"]),
            "phase": row["phase"],
            "n_total": int(row["n_total"]),
            "n_evaluations": len(evaluations),
            "n_feasible": sum(1 for e in evaluations if e.get("feasible")),
            "objective_min": min(objectives) if objectives else None,
            "objective_max": max(objectives) if objectives else None,
            "created_at": row["created_at"],
        })
    return out


def study_history(store: ResultsStore, study_id: str,
                  limit: int | None = None) -> list[dict]:
    _study_or_404(store, study_id)
    rows = store.evaluation_rows(study_id)
    if limit is not None:
        rows = rows[-int(limit):]
    return [{
        "batch_index": int(row["batch_index"]),
        "eval_index": int(row["eval_index"]),
        "x": json.loads(row["x"]),
        "objective": float(row["objective"]),
        "feasible": bool(row["feasible"]),
        "violation": float(row["violation"]),
        "tag": row["tag"],
        "metrics": json.loads(row["metrics"]),
    } for row in rows]


def study_curve(store: ResultsStore, study_id: str,
                sense: str = "min") -> dict:
    """Best-so-far objective per simulation (feasible-only when any are)."""
    _study_or_404(store, study_id)
    rows = store.evaluation_rows(study_id)
    better = (lambda a, b: a > b) if sense == "max" else (lambda a, b: a < b)
    worst = -np.inf if sense == "max" else np.inf
    constrained = any(not r["feasible"] for r in rows)
    best = worst
    curve = []
    for row in rows:
        value = float(row["objective"])
        if (not constrained or row["feasible"]) and better(value, best):
            best = value
        curve.append(None if best == worst else best)
    return {"study_id": study_id, "sense": sense, "curve": curve,
            "n_simulations": len(curve)}


def study_pareto(store: ResultsStore, study_id: str,
                 metrics: list[str] | None = None,
                 senses: list[str] | None = None,
                 feasible_only: bool = False) -> dict:
    """The non-dominated front of a study's evaluations.

    ``metrics`` are evaluation columns (``objective``, ``violation``,
    ``feasible``) or recorded metric names; ``senses`` gives ``min``/``max``
    per metric (default ``min``).  Defaults to the classic constrained view:
    objective vs. constraint violation, both minimised.
    """
    from repro.moo.pareto import pareto_front_mask
    _study_or_404(store, study_id)
    metrics = metrics or ["objective", "violation"]
    senses = senses or ["min"] * len(metrics)
    if len(senses) != len(metrics):
        raise ApiError(400, f"senses ({len(senses)}) must match metrics "
                            f"({len(metrics)})")
    for sense in senses:
        if sense not in ("min", "max"):
            raise ApiError(400, f"sense must be min or max, got {sense!r}")
    rows = store.evaluation_rows(study_id)
    if feasible_only:
        rows = [r for r in rows if r["feasible"]]
    points, kept = [], []
    for row in rows:
        metric_map = json.loads(row["metrics"])
        try:
            values = [_eval_value(row, metric_map, name) for name in metrics]
        except ApiError:
            raise
        points.append([v if s == "min" else -v
                       for v, s in zip(values, senses)])
        kept.append((row, values))
    front = []
    if points:
        mask = pareto_front_mask(np.asarray(points, dtype=float))
        for (row, values), on_front in zip(kept, mask):
            if on_front:
                front.append({
                    "batch_index": int(row["batch_index"]),
                    "eval_index": int(row["eval_index"]),
                    "values": dict(zip(metrics, values)),
                    "objective": float(row["objective"]),
                    "feasible": bool(row["feasible"]),
                    "x": json.loads(row["x"]),
                })
    return {"study_id": study_id, "metrics": metrics, "senses": senses,
            "n_evaluations": len(rows), "front": front,
            "n_front": len(front)}


def worker_health(store: ResultsStore, stale_after: float = 60.0) -> list[dict]:
    now = time.time()
    out = []
    for row in store.list_workers():
        age = now - row["heartbeat_at"]
        busy = float(row.get("busy_seconds") or 0.0)
        rows_done = int(row.get("rows_done") or 0)
        out.append({**row,
                    "heartbeat_age": age,
                    "alive": row["status"] != "stopped" and age < stale_after,
                    "rows_per_second": rows_done / busy if busy > 0 else None})
    return out


def metrics_overview(store: ResultsStore) -> dict:
    """The ``/api/metrics`` body: merged registry + service-level signals.

    Merges the latest persisted snapshot of every source (driver processes
    and workers write cumulative snapshots into the ``metrics`` table) --
    plus this process's live registry when telemetry is enabled -- and adds
    the store-derived signals the solver-health dashboard plots: queue
    latency over completed jobs, per-worker throughput and the rescue rate.
    """
    from repro import telemetry
    snapshots = store.latest_metrics_snapshots()
    # One process = one registry: sources sharing a pid (a driver with
    # --spawn-workers threads) write overlapping cumulative snapshots, so
    # keep only the freshest snapshot per process before merging.
    by_process: dict = {}
    for row in snapshots:
        key = row["payload"].get("pid", row["source"])
        kept = by_process.get(key)
        if kept is None or row["created_at"] > kept["created_at"]:
            by_process[key] = row
    if telemetry.enabled():
        # The live registry supersedes anything this process persisted.
        by_process[os.getpid()] = {"payload": telemetry.snapshot(),
                                   "created_at": time.time()}
    merged = telemetry.merge_snapshots(
        row["payload"] for row in by_process.values())
    counters = merged.get("counters", {})
    solves = counters.get("repro_solves_total", 0)
    latencies = [float(row["latency"]) for row in store.connection().execute(
        """SELECT updated_at - created_at AS latency FROM jobs
           WHERE status = 'done'""").fetchall()]
    workers = []
    for row in store.list_workers():
        busy = float(row.get("busy_seconds") or 0.0)
        rows_done = int(row.get("rows_done") or 0)
        workers.append({
            "worker_id": row["worker_id"],
            "n_jobs_done": int(row["n_jobs_done"]),
            "rows_done": rows_done,
            "busy_seconds": busy,
            "rows_per_second": rows_done / busy if busy > 0 else None,
        })
    return {
        "sources": [{"source": row["source"], "study_id": row["study_id"],
                     "batch_index": int(row["batch_index"]),
                     "created_at": row["created_at"]} for row in snapshots],
        "merged": merged,
        "rescue_rate": (counters.get("repro_rescue_entries_total", 0) / solves
                        if solves else 0.0),
        "queue_latency": {
            "n_done": len(latencies),
            "mean_seconds": (sum(latencies) / len(latencies)
                             if latencies else None),
            "max_seconds": max(latencies) if latencies else None,
        },
        "workers": workers,
    }


def prometheus_body(store: ResultsStore) -> str:
    """The ``/metrics`` body: merged registry in Prometheus text format.

    Registry counters/histograms come from :func:`metrics_overview`'s
    merge; queue depths are appended as gauges so scrapers see backlog
    without a second endpoint.
    """
    from repro import telemetry
    text = telemetry.prometheus_text(metrics_overview(store)["merged"])
    counts = WorkQueue(store).counts()
    lines = [f'repro_queue_jobs{{status="{status}"}} {int(count)}'
             for status, count in sorted(counts.items())]
    if lines:
        text += "# TYPE repro_queue_jobs gauge\n" + "\n".join(lines) + "\n"
    return text


# ---------------------------------------------------------------------- #
# the server                                                              #
# ---------------------------------------------------------------------- #
class _Routes:
    """Shared, store-bound routing logic (one instance per server)."""

    def __init__(self, store: ResultsStore):
        self.store = store
        self._listing_lock = threading.Lock()
        self._listings: dict[str, list] = {}

    def _registry_listing(self, kind: str) -> list[dict]:
        # The registries are static per process; build each listing once
        # (list-problems instantiates every problem, which is not free).
        with self._listing_lock:
            if kind not in self._listings:
                from repro.study.cli import optimizer_entries, problem_entries
                self._listings[kind] = (optimizer_entries() if kind == "optimizers"
                                        else problem_entries())
            return self._listings[kind]

    def dispatch(self, path: str, query: dict) -> tuple[int, str, object]:
        """Return ``(status, content_type, body)`` for one GET."""
        first = lambda key, default=None: query.get(key, [default])[0]
        store = self.store
        if path in ("/", "/index.html"):
            return 200, "text/html; charset=utf-8", _DASHBOARD_HTML
        if path == "/healthz":
            return 200, "application/json", {"status": "ok",
                                             "db": store.path}
        if path == "/api/studies":
            sense = first("sense", "min")
            return 200, "application/json", [
                study_summary(store, study, sense=sense)
                for study in store.list_studies()]
        if path == "/api/workers":
            return 200, "application/json", worker_health(
                store, stale_after=float(first("stale_after", 60.0)))
        if path == "/api/metrics":
            return 200, "application/json", metrics_overview(store)
        if path == "/metrics":
            return (200, "text/plain; version=0.0.4; charset=utf-8",
                    prometheus_body(store))
        if path == "/api/jobs":
            queue = WorkQueue(store)
            study = first("study")
            body = {"counts": queue.counts(study)}
            if first("detail") in ("1", "true"):
                body["jobs"] = [
                    {k: v for k, v in row.items() if k not in ("payload",
                                                               "result")}
                    for row in queue.job_rows(study)]
            return 200, "application/json", body
        if path == "/api/bench":
            return 200, "application/json", store.bench_rows(first("name"))
        if path == "/api/problems":
            return 200, "application/json", self._registry_listing("problems")
        if path == "/api/optimizers":
            return 200, "application/json", self._registry_listing("optimizers")
        if path.startswith("/api/studies/"):
            parts = [p for p in path.split("/") if p][2:]  # after api/studies
            study_id = parts[0]
            tail = parts[1] if len(parts) > 1 else ""
            if len(parts) > 2:
                raise ApiError(404, f"no route {path!r}")
            sense = first("sense", "min")
            if tail == "":
                return 200, "application/json", study_detail(
                    store, study_id, sense=sense)
            if tail == "batches":
                since = first("since")
                return 200, "application/json", study_batches(
                    store, study_id,
                    since=None if since is None else int(since))
            if tail == "history":
                limit = first("limit")
                return 200, "application/json", study_history(
                    store, study_id,
                    limit=None if limit is None else int(limit))
            if tail == "curve":
                return 200, "application/json", study_curve(
                    store, study_id, sense=sense)
            if tail == "pareto":
                metrics = first("metrics")
                senses = first("senses")
                return 200, "application/json", study_pareto(
                    store, study_id,
                    metrics=metrics.split(",") if metrics else None,
                    senses=senses.split(",") if senses else None,
                    feasible_only=first("feasible_only") in ("1", "true"))
            raise ApiError(404, f"no route {path!r}")
        raise ApiError(404, f"no route {path!r}")


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-service/1"
    #: Set by create_server on the handler class.
    routes: _Routes = None  # type: ignore[assignment]
    quiet = True

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        try:
            status, content_type, body = self.routes.dispatch(
                parsed.path, parse_qs(parsed.query))
        except ApiError as exc:
            status, content_type = exc.status, "application/json"
            body = {"error": str(exc), "status": exc.status}
        except Exception as exc:  # noqa: BLE001 - one request, not the server
            status, content_type = 500, "application/json"
            body = {"error": f"{type(exc).__name__}: {exc}", "status": 500}
        payload = (body if isinstance(body, str)
                   else json.dumps(body, indent=2, default=str)).encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.send_header("Access-Control-Allow-Origin", "*")
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:  # pragma: no cover - logging passthrough
            super().log_message(format, *args)


def create_server(store: ResultsStore | str, host: str = "127.0.0.1",
                  port: int = 0, quiet: bool = True) -> ThreadingHTTPServer:
    """Build (but do not start) the API server; ``port=0`` picks a free one.

    Returns a :class:`ThreadingHTTPServer`; call ``serve_forever()`` (or
    run it on a thread in tests) and ``shutdown()``/``server_close()`` when
    done.  The bound port is ``server.server_address[1]``.
    """
    store = store if isinstance(store, ResultsStore) else ResultsStore(store)
    handler = type("BoundHandler", (_Handler,),
                   {"routes": _Routes(store), "quiet": quiet})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve_dashboard(store: ResultsStore | str, host: str = "127.0.0.1",
                    port: int = 8732, quiet: bool = False) -> None:
    """Entry point behind ``python -m repro dashboard`` (blocks forever)."""
    server = create_server(store, host=host, port=port, quiet=quiet)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro dashboard serving http://{bound_host}:{bound_port}/ "
          f"(db: {server.RequestHandlerClass.routes.store.path})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()


# ---------------------------------------------------------------------- #
# the dashboard page                                                      #
# ---------------------------------------------------------------------- #
_DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro study service</title>
<style>
  :root { color-scheme: light dark; }
  body { font: 14px/1.45 system-ui, sans-serif; margin: 1.5rem auto;
         max-width: 72rem; padding: 0 1rem; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: .28rem .6rem;
           border-bottom: 1px solid #8884; font-variant-numeric: tabular-nums; }
  th { font-weight: 600; }
  tr.study { cursor: pointer; }
  tr.selected { background: #4a90d922; }
  .ok { color: #2e7d32; } .warn { color: #c62828; } .muted { opacity: .6; }
  #curve { width: 100%; height: 120px; }
  code { font-size: .85em; }
  .pill { border: 1px solid #8886; border-radius: 999px; padding: 0 .5em; }
</style>
</head>
<body>
<h1>repro study service <span id="db" class="muted"></span></h1>

<h2>Studies</h2>
<table id="studies"><thead><tr>
  <th>study</th><th>optimizer</th><th>circuit</th><th>status</th>
  <th>evals / budget</th><th>batches</th><th>best objective</th>
</tr></thead><tbody></tbody></table>

<div id="detail" style="display:none">
  <h2>Best-so-far <span id="detail-id" class="muted"></span></h2>
  <svg id="curve" preserveAspectRatio="none"></svg>
  <h2>Pareto front (objective vs. violation)</h2>
  <div id="pareto" class="muted"></div>
</div>

<h2>Solver health</h2>
<div id="solver" class="muted">no telemetry snapshots yet</div>
<div id="iterhist" style="margin-top:.4rem"></div>

<h2>Workers</h2>
<table id="workers"><thead><tr>
  <th>worker</th><th>host</th><th>status</th><th>jobs done</th>
  <th>rows</th><th>busy</th><th>rows/s</th><th>heartbeat age</th>
</tr></thead><tbody></tbody></table>

<h2>Queue</h2>
<div id="jobs"></div>

<h2>BENCH records</h2>
<table id="bench"><thead><tr>
  <th>name</th><th>latest record</th>
</tr></thead><tbody></tbody></table>

<script>
let selected = null;
const get = (url) => fetch(url).then(r => r.json());
const cell = (text, cls) => {
  const td = document.createElement('td');
  td.textContent = text === null || text === undefined ? '-' : text;
  if (cls) td.className = cls;
  return td;
};

async function refreshStudies() {
  const studies = await get('/api/studies');
  const body = document.querySelector('#studies tbody');
  body.replaceChildren();
  for (const s of studies) {
    const tr = document.createElement('tr');
    tr.className = 'study' + (s.study_id === selected ? ' selected' : '');
    tr.onclick = () => { selected = s.study_id; refreshDetail(); refreshStudies(); };
    tr.append(
      cell(s.study_id), cell(s.optimizer), cell(s.circuit),
      cell(s.status, s.status === 'finished' ? 'ok'
           : s.status === 'failed' ? 'warn' : ''),
      cell(`${s.n_evaluations} / ${s.budget ?? '?'}`), cell(s.n_batches),
      cell(s.best ? s.best.objective.toPrecision(6) : null));
    body.append(tr);
  }
}

async function refreshDetail() {
  if (!selected) return;
  document.getElementById('detail').style.display = '';
  document.getElementById('detail-id').textContent = selected;
  const data = await get(`/api/studies/${selected}/curve`);
  const values = data.curve.filter(v => v !== null);
  const svg = document.getElementById('curve');
  svg.replaceChildren();
  if (values.length > 1) {
    const w = 1000, h = 120;
    svg.setAttribute('viewBox', `0 0 ${w} ${h}`);
    const lo = Math.min(...values), hi = Math.max(...values);
    const span = (hi - lo) || 1;
    const pts = values.map((v, i) =>
      `${(i / (values.length - 1)) * w},${h - 8 - ((v - lo) / span) * (h - 16)}`);
    const line = document.createElementNS('http://www.w3.org/2000/svg', 'polyline');
    line.setAttribute('points', pts.join(' '));
    line.setAttribute('fill', 'none');
    line.setAttribute('stroke', '#4a90d9');
    line.setAttribute('stroke-width', '2');
    svg.append(line);
  }
  const pareto = await get(`/api/studies/${selected}/pareto`);
  document.getElementById('pareto').textContent =
    `${pareto.n_front} non-dominated of ${pareto.n_evaluations} evaluations: ` +
    pareto.front.slice(0, 8).map(p =>
      Object.entries(p.values).map(([k, v]) => `${k}=${v.toPrecision(4)}`).join(' ')
    ).join('  |  ');
}

async function refreshInfra() {
  const workers = await get('/api/workers');
  const body = document.querySelector('#workers tbody');
  body.replaceChildren();
  for (const w of workers) {
    const tr = document.createElement('tr');
    tr.append(cell(w.worker_id), cell(w.hostname),
              cell(w.status, w.alive ? 'ok' : 'muted'),
              cell(w.n_jobs_done), cell(w.rows_done),
              cell(`${(w.busy_seconds ?? 0).toFixed(1)}s`),
              cell(w.rows_per_second === null ? null
                   : w.rows_per_second.toFixed(2)),
              cell(`${w.heartbeat_age.toFixed(1)}s`));
    body.append(tr);
  }
  const jobs = await get('/api/jobs');
  document.getElementById('jobs').innerHTML =
    Object.entries(jobs.counts).map(([k, v]) =>
      `<span class="pill">${k}: ${v}</span>`).join(' ');
  const metrics = await get('/api/metrics');
  const c = metrics.merged.counters || {};
  const hists = metrics.merged.histograms || {};
  const solves = c.repro_solves_total || 0;
  const pills = [
    `solves: ${solves}`,
    `newton iterations: ${c.repro_newton_iterations_total || 0}`,
    `solve failures: ${c.repro_solve_failures_total || 0}`,
    `rescue rate: ${(metrics.rescue_rate * 100).toFixed(1)}%`,
    `cache hits: ${c.repro_cache_hits_total || 0}`,
    `cache misses: ${c.repro_cache_misses_total || 0}`,
  ];
  const occ = hists.repro_batch_occupancy;
  if (occ && occ.count)
    pills.push(`batch occupancy: ${(occ.sum / occ.count * 100).toFixed(0)}%`);
  const lat = metrics.queue_latency;
  if (lat.mean_seconds !== null)
    pills.push(`queue latency: ${lat.mean_seconds.toFixed(2)}s mean over ` +
               `${lat.n_done} jobs`);
  const solver = document.getElementById('solver');
  if (solves || metrics.sources.length) {
    solver.className = '';
    solver.innerHTML = pills.map(p => `<span class="pill">${p}</span>`).join(' ');
  }
  const iters = hists.repro_solve_iterations;
  const histDiv = document.getElementById('iterhist');
  if (iters && iters.count) {
    const labels = [...iters.bounds.map(String), 'inf'];
    histDiv.innerHTML = 'iterations/solve: ' + iters.counts.map((n, i) =>
      `<span class="pill">&le;${labels[i]}: ${n}</span>`).join(' ');
  }
  const bench = await get('/api/bench');
  const latest = new Map();
  for (const b of bench) latest.set(b.name, b);
  const benchBody = document.querySelector('#bench tbody');
  benchBody.replaceChildren();
  for (const [name, b] of latest) {
    const tr = document.createElement('tr');
    tr.append(cell(name), cell(JSON.stringify(b.record).slice(0, 160)));
    benchBody.append(tr);
  }
}

async function tick() {
  try {
    await Promise.all([refreshStudies(), refreshInfra(), refreshDetail()]);
  } catch (e) { /* server restarting; retry on next tick */ }
}
get('/healthz').then(h => document.getElementById('db').textContent = h.db);
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
"""
