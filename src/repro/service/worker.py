"""Queue workers: claim evaluation jobs, simulate, write results back.

A worker is a plain process (``python -m repro worker --db results.db``)
that loops claim → evaluate → complete against the shared store.  Several
workers against one database shard a study's evaluation batches between
them; workers can come and go freely because correctness lives in the queue
semantics (leases + deterministic evaluation), not in worker lifetime.

Evaluation mirrors the in-process engine exactly:

* each design row goes through
  :func:`repro.engine.engine.evaluate_design_task` -- the engine's own unit
  of work -- so exceptions are encoded per row and shipped back for the
  *driver* to pessimise, exactly as a local backend would;
* results serialize via
  :func:`~repro.study.checkpoint.evaluation_to_dict`, whose float handling
  round-trips bit-exactly;
* a per-worker :class:`~repro.engine.cache.DesignCache` (the same class the
  engine uses, with the same clipped-design keying) serves repeat designs --
  e.g. a re-leased job whose rows the worker already simulated -- without
  re-simulating.

While a job runs, a daemon thread extends the lease and refreshes the
worker's heartbeat row, so the dashboard can tell a busy worker from a dead
one and a long simulation is never reaped mid-flight.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import traceback
import uuid

import numpy as np

from repro import telemetry
from repro.engine.cache import DesignCache
from repro.engine.engine import _TaskFailure, evaluate_design_task
from repro.service.queue import DEFAULT_LEASE_SECONDS, Job, WorkQueue
from repro.service.store import ResultsStore, _dump
from repro.study.checkpoint import evaluation_to_dict
from repro.study.spec import StudySpec


def make_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class Worker:
    """One claim-evaluate-complete loop against a results store.

    Parameters
    ----------
    store:
        The shared results store (path or instance).
    worker_id:
        Stable identity used for leases and the heartbeat row; generated
        when omitted.
    lease_seconds:
        Lease duration requested on claim and on each heartbeat extension.
    poll_interval:
        Idle sleep between claim attempts when the queue is empty.
    backend:
        Evaluation backend override for problems built from job specs
        (default ``"serial"``; ``"batched"`` vectorises within a job's
        rows).  Workers never inherit the spec's backend -- a spec asking
        for a process pool should not make every worker spawn one.
    """

    def __init__(self, store: ResultsStore | str,
                 worker_id: str | None = None,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 poll_interval: float = 0.2,
                 backend: str = "serial"):
        self.store = store if isinstance(store, ResultsStore) else ResultsStore(store)
        self.queue = WorkQueue(self.store)
        self.worker_id = worker_id or make_worker_id()
        self.lease_seconds = float(lease_seconds)
        self.poll_interval = float(poll_interval)
        self.backend = backend
        self.n_jobs_done = 0
        self._problems: dict[str, object] = {}
        self._caches: dict[str, DesignCache] = {}
        self._stop = threading.Event()

    # ------------------------------------------------------------------ #
    # lifecycle                                                           #
    # ------------------------------------------------------------------ #
    def request_stop(self) -> None:
        self._stop.set()

    def run(self, max_jobs: int | None = None,
            idle_timeout: float | None = None) -> int:
        """Process jobs until stopped; returns the number completed.

        ``max_jobs`` bounds the number of jobs processed; ``idle_timeout``
        exits after that many consecutive seconds with an empty queue (how
        CI smoke workers wind down without signals).
        """
        self.store.register_worker(self.worker_id,
                                   hostname=socket.gethostname(),
                                   pid=os.getpid())
        idle_since: float | None = None
        try:
            while not self._stop.is_set():
                job = self.queue.claim(self.worker_id, self.lease_seconds)
                if job is None:
                    now = time.time()
                    idle_since = idle_since if idle_since is not None else now
                    if (idle_timeout is not None
                            and now - idle_since >= idle_timeout):
                        break
                    self.store.worker_heartbeat(self.worker_id, "idle")
                    self._stop.wait(self.poll_interval)
                    continue
                idle_since = None
                self.process_job(job)
                if max_jobs is not None and self.n_jobs_done >= max_jobs:
                    break
        finally:
            self.store.worker_heartbeat(self.worker_id, "stopped")
            self._release_problems()
        return self.n_jobs_done

    def _release_problems(self) -> None:
        for problem in self._problems.values():
            try:
                problem.engine.close()
                problem.close()
            except Exception:  # pragma: no cover - shutdown is best-effort
                pass
        self._problems.clear()

    # ------------------------------------------------------------------ #
    # one job                                                             #
    # ------------------------------------------------------------------ #
    def process_job(self, job: Job) -> bool:
        """Evaluate one claimed job; returns True if the completion landed.

        Each heartbeat carries the job's wall time and evaluated row count
        as deltas, so the dashboard's per-worker throughput stays fresh
        without a second bookkeeping channel.
        """
        self.store.worker_heartbeat(self.worker_id, "busy",
                                    current_job=job.job_id)
        stop_beat = threading.Event()
        beat = threading.Thread(target=self._heartbeat_loop,
                                args=(job, stop_beat), daemon=True)
        beat.start()
        started = time.perf_counter()
        try:
            with telemetry.span("worker.job", job=job.job_id,
                                study=job.study_id,
                                batch=job.batch_index):
                results = self._evaluate_payload(job.payload)
        except Exception as exc:  # noqa: BLE001 - job-level isolation
            stop_beat.set()
            beat.join()
            self.queue.fail(job.job_id, self.worker_id,
                            f"{type(exc).__name__}: {exc}\n"
                            f"{traceback.format_exc(limit=5)}")
            self.store.worker_heartbeat(
                self.worker_id, "idle",
                busy_seconds_delta=time.perf_counter() - started)
            return False
        wall = time.perf_counter() - started
        stop_beat.set()
        beat.join()
        landed = self.queue.complete(job.job_id, self.worker_id, results)
        self.n_jobs_done += 1
        self.store.worker_heartbeat(self.worker_id, "idle",
                                    jobs_done_delta=1,
                                    rows_delta=len(results),
                                    busy_seconds_delta=wall)
        if telemetry.enabled():
            telemetry.observe("repro_job_seconds", wall,
                              telemetry.SECONDS_BUCKETS)
            telemetry.inc("repro_jobs_done_total")
            telemetry.inc("repro_rows_evaluated_total", len(results))
            # pid rides along so /api/metrics can collapse sources sharing
            # one process registry (e.g. --spawn-workers threads).
            self.store.write_metrics_snapshot(
                job.study_id, job.batch_index,
                {**telemetry.snapshot(), "pid": os.getpid()},
                source=self.worker_id)
        return landed

    def _heartbeat_loop(self, job: Job, stop: threading.Event) -> None:
        interval = max(0.05, self.lease_seconds / 3.0)
        while not stop.wait(interval):
            if not self.queue.heartbeat(job.job_id, self.worker_id,
                                        self.lease_seconds):
                return  # lease lost; completion will be rejected anyway
            self.store.worker_heartbeat(self.worker_id, "busy",
                                        current_job=job.job_id)

    # ------------------------------------------------------------------ #
    # evaluation                                                          #
    # ------------------------------------------------------------------ #
    def _problem_for(self, spec_dict: dict):
        """Build (and memoise) the problem a job's spec describes.

        Keyed on the canonical spec JSON, so every job of one study reuses
        one problem instance -- and its engine plumbing -- instead of
        rebuilding testbenches per job.  The worker overrides the spec's
        evaluation backend with its own.
        """
        key = _dump(spec_dict)
        problem = self._problems.get(key)
        if problem is None:
            from dataclasses import replace
            spec = replace(StudySpec.from_dict(spec_dict),
                           backend=self.backend, max_workers=None)
            problem = spec.build_problem()
            self._problems[key] = problem
            self._caches[key] = problem.engine.cache or DesignCache()
        return problem, self._caches[key]

    def _evaluate_payload(self, payload: dict) -> list[dict]:
        if payload.get("kind") != "evaluate":
            raise ValueError(f"unknown job kind {payload.get('kind')!r}")
        problem, cache = self._problem_for(payload["spec"])
        space = problem.design_space
        token = getattr(problem, "cache_token", problem.name)
        results: list[dict] = []
        for row in payload["x"]:
            x = np.asarray(row, dtype=float)
            key = DesignCache.key_for(token, space.clip(x.reshape(1, -1))[0])
            hit = cache.get(key)
            if hit is not None:
                # Clone onto the requested raw x, as the engine's cache
                # layer does (keys use the clipped design, records keep x).
                from repro.engine.engine import EvaluationEngine
                results.append({"ok": True, "evaluation": evaluation_to_dict(
                    EvaluationEngine._clone(hit, x))})
                continue
            outcome = evaluate_design_task((problem, x))
            if isinstance(outcome, _TaskFailure):
                results.append({"ok": False, "kind": outcome.kind,
                                "message": outcome.message})
            else:
                # Successes only, like the engine: failures may be
                # environment-transient and should retry on a fresh claim.
                cache.put(key, outcome)
                results.append({"ok": True,
                                "evaluation": evaluation_to_dict(outcome)})
        return results


def run_worker(db_path: str, worker_id: str | None = None,
               lease_seconds: float = DEFAULT_LEASE_SECONDS,
               poll_interval: float = 0.2, backend: str = "serial",
               max_jobs: int | None = None,
               idle_timeout: float | None = None) -> int:
    """Entry point behind ``python -m repro worker``."""
    worker = Worker(db_path, worker_id=worker_id,
                    lease_seconds=lease_seconds,
                    poll_interval=poll_interval, backend=backend)
    try:
        return worker.run(max_jobs=max_jobs, idle_timeout=idle_timeout)
    except KeyboardInterrupt:
        worker.request_stop()
        return worker.n_jobs_done
    finally:
        worker.store.close()
