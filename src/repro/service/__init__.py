"""The study service: shared results store, leased workers, HTTP API.

The batched simulation core made one process fast; this package makes many
processes cooperate.  It has three layers, each usable on its own:

* :mod:`repro.service.store` -- a WAL-mode SQLite **results store** holding
  studies, their per-batch evaluation records, queue jobs, worker heartbeats
  and ingested BENCH records.  :class:`~repro.service.store.StoreCheckpoint`
  plugs the store into the existing
  :class:`~repro.study.checkpoint.StudyCheckpoint` seam, so
  ``Study(spec, checkpoint=StoreCheckpoint(db, study_id))`` checkpoints into
  the database with the same bit-identical resume guarantee as the JSONL
  files it graduates.
* :mod:`repro.service.queue` / :mod:`repro.service.worker` -- a **work
  queue** with time-limited leases.  The study driver enqueues evaluation
  batches as JSON jobs (:class:`~repro.service.queue.QueueBackend`, an
  :class:`~repro.engine.backends.ExecutionBackend` the engine recognises via
  its ``job_dispatch`` flag); workers started with ``python -m repro
  worker`` claim jobs, heartbeat their leases and write results back.  A
  killed worker's lease expires and the job is re-leased, so the study's
  final history is identical to a single-worker run.
* :mod:`repro.service.api` -- a dependency-free **HTTP API and dashboard**
  (``python -m repro dashboard``): study listings, per-batch progress,
  best-so-far curves, Pareto fronts, worker/lease health and BENCH
  trajectories, all straight out of the store.

:func:`repro.service.driver.run_service_study` ties the layers together for
``python -m repro run --db ...``.
"""

from __future__ import annotations

import importlib

_LAZY_ATTRS = {
    "ResultsStore": "repro.service.store",
    "StoreCheckpoint": "repro.service.store",
    "StoreError": "repro.service.store",
    "WorkQueue": "repro.service.queue",
    "QueueBackend": "repro.service.queue",
    "Job": "repro.service.queue",
    "Worker": "repro.service.worker",
    "run_worker": "repro.service.worker",
    "run_service_study": "repro.service.driver",
    "resume_service_study": "repro.service.driver",
    "create_server": "repro.service.api",
    "serve_dashboard": "repro.service.api",
}

__all__ = sorted(_LAZY_ATTRS)


def __getattr__(name: str):
    module_name = _LAZY_ATTRS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_ATTRS))
