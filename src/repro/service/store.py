"""The SQLite results store: studies, batches, jobs, workers, BENCH records.

One ``.db`` file is the shared ground truth for a whole deployment: study
drivers checkpoint into it, queue workers lease jobs out of it, and the HTTP
API serves dashboards from it.  SQLite in WAL mode handles the concurrency
this needs -- many readers plus one writer at a time, across processes --
without a server, which is exactly the ``gryt-ci`` data-layer shape.

Layout
------
``studies``
    One row per study run: the full :class:`~repro.study.spec.StudySpec`
    dict as JSON, the seed, a coarse status machine
    (``running``/``finished``/``failed``) and bookkeeping timestamps.
``batches``
    One row per evaluation batch, keyed ``(study_id, batch_index)`` and
    **upserted idempotently**: the row stores the complete JSONL batch
    record verbatim (as JSON text), so resume reads back byte-for-byte what
    the JSONL checkpoint would have held -- that is what keeps resume
    bit-identical after the move to the store.
``evaluations``
    The same evaluations denormalised one-per-row (objective, feasibility,
    violation, metrics JSON) for the API's history/curve/Pareto queries.
``jobs`` / ``workers``
    The work queue (see :mod:`repro.service.queue`) and worker heartbeats.
``bench_records``
    Ingested ``BENCH_*`` benchmark records (``python -m repro db
    ingest-bench``), keyed by name + content so re-ingesting is a no-op.
``metrics``
    Telemetry registry snapshots, one JSON payload per ``(study, batch,
    source)`` where ``source`` is the emitting process (driver or worker).
    Snapshots are cumulative per source; ``/api/metrics`` merges the latest
    row of every source into deployment totals.

Connections are per-thread (the HTTP server is threaded); writes go through
short ``BEGIN IMMEDIATE`` transactions so cross-process writers serialize
cleanly under WAL.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from contextlib import contextmanager

from repro.errors import ReproError
from repro.study.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointData,
    CheckpointError,
    StudyCheckpoint,
    evaluation_to_dict,
    read_checkpoint,
    rng_state,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS studies (
    study_id      TEXT PRIMARY KEY,
    spec          TEXT NOT NULL,
    seed          INTEGER NOT NULL,
    version       INTEGER NOT NULL,
    status        TEXT NOT NULL DEFAULT 'running',
    stop_reason   TEXT,
    n_simulations INTEGER,
    created_at    REAL NOT NULL,
    updated_at    REAL NOT NULL
);

CREATE TABLE IF NOT EXISTS batches (
    study_id    TEXT NOT NULL REFERENCES studies(study_id) ON DELETE CASCADE,
    batch_index INTEGER NOT NULL,
    phase       TEXT NOT NULL,
    n_total     INTEGER NOT NULL,
    record      TEXT NOT NULL,
    created_at  REAL NOT NULL,
    PRIMARY KEY (study_id, batch_index)
);

CREATE TABLE IF NOT EXISTS evaluations (
    study_id    TEXT NOT NULL,
    batch_index INTEGER NOT NULL,
    eval_index  INTEGER NOT NULL,
    x           TEXT NOT NULL,
    objective   REAL NOT NULL,
    feasible    INTEGER NOT NULL,
    violation   REAL NOT NULL,
    tag         TEXT NOT NULL DEFAULT '',
    metrics     TEXT NOT NULL,
    extra       TEXT NOT NULL DEFAULT '{}',
    PRIMARY KEY (study_id, batch_index, eval_index)
);
CREATE INDEX IF NOT EXISTS idx_evaluations_study
    ON evaluations (study_id, batch_index, eval_index);

CREATE TABLE IF NOT EXISTS jobs (
    job_id       INTEGER PRIMARY KEY AUTOINCREMENT,
    study_id     TEXT NOT NULL,
    batch_index  INTEGER NOT NULL,
    shard_index  INTEGER NOT NULL DEFAULT 0,
    payload      TEXT NOT NULL,
    status       TEXT NOT NULL DEFAULT 'queued',
    attempts     INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL DEFAULT 5,
    lease_owner  TEXT,
    lease_expires REAL,
    result       TEXT,
    error        TEXT,
    created_at   REAL NOT NULL,
    updated_at   REAL NOT NULL,
    UNIQUE (study_id, batch_index, shard_index)
);
CREATE INDEX IF NOT EXISTS idx_jobs_status ON jobs (status, lease_expires);

CREATE TABLE IF NOT EXISTS workers (
    worker_id    TEXT PRIMARY KEY,
    hostname     TEXT NOT NULL DEFAULT '',
    pid          INTEGER,
    status       TEXT NOT NULL DEFAULT 'idle',
    current_job  INTEGER,
    n_jobs_done  INTEGER NOT NULL DEFAULT 0,
    rows_done    INTEGER NOT NULL DEFAULT 0,
    busy_seconds REAL NOT NULL DEFAULT 0,
    started_at   REAL NOT NULL,
    heartbeat_at REAL NOT NULL
);

CREATE TABLE IF NOT EXISTS metrics (
    study_id    TEXT NOT NULL,
    batch_index INTEGER NOT NULL,
    source      TEXT NOT NULL DEFAULT 'driver',
    payload     TEXT NOT NULL,
    created_at  REAL NOT NULL,
    PRIMARY KEY (study_id, batch_index, source)
);
CREATE INDEX IF NOT EXISTS idx_metrics_source ON metrics (source, created_at);

CREATE TABLE IF NOT EXISTS bench_records (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    name        TEXT NOT NULL,
    record      TEXT NOT NULL,
    source      TEXT NOT NULL DEFAULT '',
    ingested_at REAL NOT NULL,
    UNIQUE (name, record)
);
"""


class StoreError(ReproError):
    """Raised for results-store misuse (unknown study, bad db file, ...)."""


def _dump(data) -> str:
    """Canonical JSON text (sorted keys -- same as the JSONL checkpoint)."""
    return json.dumps(data, sort_keys=True)


class ResultsStore:
    """One SQLite results database (see module docstring for the layout).

    Thread-safe via per-thread connections; process-safe via WAL mode and
    ``BEGIN IMMEDIATE`` write transactions with a busy timeout.  Cheap to
    construct -- workers, drivers and API handlers each hold their own.
    """

    def __init__(self, path: str | os.PathLike, timeout: float = 30.0):
        self.path = os.fspath(path)
        self.timeout = float(timeout)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self._local = threading.local()
        self._connections: list[sqlite3.Connection] = []
        self._connections_lock = threading.Lock()
        # Create the schema eagerly so read-only consumers (the API) can
        # point at a db file that no driver has written yet.  executescript
        # manages its own transaction (it commits any open one first).
        self.connection().executescript(_SCHEMA)
        self._migrate_columns()

    def _migrate_columns(self) -> None:
        """Add columns newer code expects to tables older stores created.

        ``CREATE TABLE IF NOT EXISTS`` skips existing tables entirely, so a
        db written by an earlier version needs guarded ``ALTER TABLE`` for
        columns added since (SQLite has no ``ADD COLUMN IF NOT EXISTS``).
        """
        conn = self.connection()
        existing = {row[1] for row in
                    conn.execute("PRAGMA table_info(workers)").fetchall()}
        for name, declaration in (("rows_done", "INTEGER NOT NULL DEFAULT 0"),
                                  ("busy_seconds", "REAL NOT NULL DEFAULT 0")):
            if name not in existing:
                conn.execute(
                    f"ALTER TABLE workers ADD COLUMN {name} {declaration}")

    # ------------------------------------------------------------------ #
    # connections                                                         #
    # ------------------------------------------------------------------ #
    def connection(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            try:
                conn = sqlite3.connect(self.path, timeout=self.timeout,
                                       isolation_level=None)
            except sqlite3.Error as exc:
                raise StoreError(f"cannot open results store "
                                 f"{self.path!r}: {exc}") from exc
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA foreign_keys=ON")
            conn.execute(f"PRAGMA busy_timeout={int(self.timeout * 1000)}")
            self._local.conn = conn
            with self._connections_lock:
                self._connections.append(conn)
        return conn

    @contextmanager
    def transaction(self):
        """One ``BEGIN IMMEDIATE`` write transaction (commit/rollback)."""
        conn = self.connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            yield conn
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        conn.execute("COMMIT")

    def close(self) -> None:
        """Close every connection this store opened (idempotent)."""
        with self._connections_lock:
            connections, self._connections = self._connections, []
        for conn in connections:
            try:
                conn.close()
            except sqlite3.Error:  # pragma: no cover - close is best-effort
                pass
        self._local = threading.local()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultsStore({self.path!r})"

    # ------------------------------------------------------------------ #
    # studies                                                             #
    # ------------------------------------------------------------------ #
    def upsert_study(self, study_id: str, spec_dict: dict, seed: int,
                     status: str = "running",
                     version: int = CHECKPOINT_VERSION) -> None:
        """Create or refresh a study row (idempotent; keeps ``created_at``)."""
        now = time.time()
        with self.transaction() as conn:
            conn.execute(
                """INSERT INTO studies
                       (study_id, spec, seed, version, status,
                        created_at, updated_at)
                   VALUES (?, ?, ?, ?, ?, ?, ?)
                   ON CONFLICT (study_id) DO UPDATE SET
                       spec = excluded.spec, seed = excluded.seed,
                       version = excluded.version, status = excluded.status,
                       updated_at = excluded.updated_at""",
                (study_id, _dump(spec_dict), int(seed), int(version),
                 status, now, now))

    def set_study_status(self, study_id: str, status: str,
                         stop_reason: str | None = None,
                         n_simulations: int | None = None) -> None:
        with self.transaction() as conn:
            conn.execute(
                """UPDATE studies SET status = ?, stop_reason = ?,
                       n_simulations = COALESCE(?, n_simulations),
                       updated_at = ?
                   WHERE study_id = ?""",
                (status, stop_reason,
                 None if n_simulations is None else int(n_simulations),
                 time.time(), study_id))

    def study_row(self, study_id: str) -> sqlite3.Row | None:
        return self.connection().execute(
            "SELECT * FROM studies WHERE study_id = ?", (study_id,)).fetchone()

    def study_exists(self, study_id: str) -> bool:
        return self.study_row(study_id) is not None

    def list_studies(self) -> list[dict]:
        """Study summaries (as dicts) with batch/evaluation aggregates."""
        rows = self.connection().execute(
            """SELECT s.*,
                      (SELECT COUNT(*) FROM batches b
                        WHERE b.study_id = s.study_id)            AS n_batches,
                      (SELECT COUNT(*) FROM evaluations e
                        WHERE e.study_id = s.study_id)            AS n_evaluations
                 FROM studies s ORDER BY s.created_at, s.study_id""").fetchall()
        return [dict(row) for row in rows]

    # ------------------------------------------------------------------ #
    # batches + evaluations                                               #
    # ------------------------------------------------------------------ #
    def write_batch_record(self, study_id: str, record: dict) -> None:
        """Idempotently upsert one JSONL-shaped batch record.

        The verbatim record lands in ``batches`` (the resume source of
        truth); its evaluations are also denormalised into ``evaluations``
        for queries.  Re-writing the same ``(study_id, batch_index)`` --
        e.g. a driver retrying after a crash between *complete* and
        *checkpoint* -- replaces the row with identical content.
        """
        index = int(record["index"])
        evaluations = record.get("evaluations", [])
        now = time.time()
        with self.transaction() as conn:
            conn.execute(
                """INSERT INTO batches
                       (study_id, batch_index, phase, n_total, record,
                        created_at)
                   VALUES (?, ?, ?, ?, ?, ?)
                   ON CONFLICT (study_id, batch_index) DO UPDATE SET
                       phase = excluded.phase, n_total = excluded.n_total,
                       record = excluded.record""",
                (study_id, index, str(record.get("phase", "step")),
                 int(record.get("n_total", len(evaluations))),
                 _dump(record), now))
            conn.execute(
                "DELETE FROM evaluations WHERE study_id = ? AND batch_index = ?",
                (study_id, index))
            conn.executemany(
                """INSERT INTO evaluations
                       (study_id, batch_index, eval_index, x, objective,
                        feasible, violation, tag, metrics, extra)
                   VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)""",
                [(study_id, index, i, _dump(ev["x"]),
                  float(ev["objective"]), int(bool(ev["feasible"])),
                  float(ev.get("violation", 0.0)), ev.get("tag") or "",
                  _dump(ev.get("metrics", {})), _dump(ev.get("extra", {})))
                 for i, ev in enumerate(evaluations)])
            conn.execute("UPDATE studies SET updated_at = ? WHERE study_id = ?",
                         (now, study_id))

    def batch_rows(self, study_id: str, since: int | None = None) -> list[sqlite3.Row]:
        query = ("SELECT * FROM batches WHERE study_id = ?"
                 + ("" if since is None else " AND batch_index > ?")
                 + " ORDER BY batch_index")
        args = (study_id,) if since is None else (study_id, int(since))
        return self.connection().execute(query, args).fetchall()

    def evaluation_rows(self, study_id: str) -> list[sqlite3.Row]:
        return self.connection().execute(
            """SELECT * FROM evaluations WHERE study_id = ?
               ORDER BY batch_index, eval_index""", (study_id,)).fetchall()

    # ------------------------------------------------------------------ #
    # checkpoint reconstruction                                           #
    # ------------------------------------------------------------------ #
    def read_checkpoint_data(self, study_id: str) -> CheckpointData:
        """Rebuild :class:`CheckpointData` exactly as the JSONL reader would.

        The header record is reconstituted from the study row and each batch
        record is parsed from its verbatim JSON, so the resulting records --
        and therefore a resume -- are bit-identical to the JSONL path.
        """
        study = self.study_row(study_id)
        if study is None:
            known = [row["study_id"] for row in self.connection().execute(
                "SELECT study_id FROM studies ORDER BY study_id").fetchall()]
            raise CheckpointError(
                f"store {self.path!r} has no study {study_id!r}"
                + (f"; known studies: {known}" if known else " (store is empty)"))
        version = int(study["version"])
        if version > CHECKPOINT_VERSION:
            raise CheckpointError(
                f"study {study_id!r} has checkpoint version {version}, newer "
                f"than this code understands ({CHECKPOINT_VERSION})")
        header = {"kind": "header", "version": version,
                  "spec": json.loads(study["spec"]), "seed": int(study["seed"])}
        data = CheckpointData(spec_dict=header["spec"], seed=header["seed"],
                              version=version, raw_records=[header])
        from repro.study.checkpoint import evaluation_from_dict
        for row in self.batch_rows(study_id):
            record = json.loads(row["record"])
            data.evaluations.extend(
                evaluation_from_dict(e) for e in record.get("evaluations", []))
            data.n_batches += 1
            data.raw_records.append(record)
        if study["status"] == "finished":
            data.finished = True
            data.stop_reason = study["stop_reason"]
        return data

    # ------------------------------------------------------------------ #
    # JSONL import                                                        #
    # ------------------------------------------------------------------ #
    def import_jsonl(self, path: str | os.PathLike,
                     study_id: str | None = None) -> str:
        """Migrate a JSONL checkpoint file into the store.

        Returns the study id (derived from the file when not given).  The
        import is idempotent: records upsert onto their ``(study_id,
        batch_index)`` keys, so re-importing the same file is a no-op and
        importing a *longer* checkpoint extends the study.
        """
        data = read_checkpoint(path)
        if study_id is None:
            study_id = derive_study_id(data.spec_dict, data.seed)
        header = data.raw_records[0]
        self.upsert_study(study_id, header["spec"], data.seed,
                          status="finished" if data.finished else "running",
                          version=data.version)
        for record in data.raw_records[1:]:
            self.write_batch_record(study_id, record)
        if data.finished:
            self.set_study_status(study_id, "finished",
                                  stop_reason=data.stop_reason,
                                  n_simulations=len(data.evaluations))
        return study_id

    # ------------------------------------------------------------------ #
    # workers                                                             #
    # ------------------------------------------------------------------ #
    def register_worker(self, worker_id: str, hostname: str = "",
                        pid: int | None = None) -> None:
        now = time.time()
        with self.transaction() as conn:
            conn.execute(
                """INSERT INTO workers
                       (worker_id, hostname, pid, status, started_at,
                        heartbeat_at)
                   VALUES (?, ?, ?, 'idle', ?, ?)
                   ON CONFLICT (worker_id) DO UPDATE SET
                       hostname = excluded.hostname, pid = excluded.pid,
                       status = 'idle', started_at = excluded.started_at,
                       heartbeat_at = excluded.heartbeat_at""",
                (worker_id, hostname, pid, now, now))

    def worker_heartbeat(self, worker_id: str, status: str,
                         current_job: int | None = None,
                         jobs_done_delta: int = 0,
                         rows_delta: int = 0,
                         busy_seconds_delta: float = 0.0) -> None:
        """Refresh one worker row; deltas accumulate throughput counters.

        ``rows_delta`` is the number of design rows the worker evaluated
        since its last heartbeat and ``busy_seconds_delta`` the wall time it
        spent inside job execution -- together they give the dashboard a
        rows-per-busy-second throughput figure per worker.
        """
        with self.transaction() as conn:
            conn.execute(
                """UPDATE workers SET status = ?, current_job = ?,
                       n_jobs_done = n_jobs_done + ?,
                       rows_done = rows_done + ?,
                       busy_seconds = busy_seconds + ?, heartbeat_at = ?
                   WHERE worker_id = ?""",
                (status, current_job, int(jobs_done_delta), int(rows_delta),
                 float(busy_seconds_delta), time.time(), worker_id))

    def list_workers(self) -> list[dict]:
        return [dict(row) for row in self.connection().execute(
            "SELECT * FROM workers ORDER BY started_at, worker_id").fetchall()]

    # ------------------------------------------------------------------ #
    # telemetry metrics snapshots                                         #
    # ------------------------------------------------------------------ #
    def write_metrics_snapshot(self, study_id: str, batch_index: int,
                               snapshot: dict, source: str = "driver") -> None:
        """Upsert one process's registry snapshot for one batch.

        ``source`` identifies the emitting process (``driver-<pid>`` or a
        worker id); snapshots are *cumulative per source*, so the latest row
        per source is that process's registry total and deployment totals
        come from merging the latest row of every source (see
        :meth:`latest_metrics_snapshots`).
        """
        with self.transaction() as conn:
            conn.execute(
                """INSERT INTO metrics
                       (study_id, batch_index, source, payload, created_at)
                   VALUES (?, ?, ?, ?, ?)
                   ON CONFLICT (study_id, batch_index, source) DO UPDATE SET
                       payload = excluded.payload,
                       created_at = excluded.created_at""",
                (study_id, int(batch_index), source, _dump(snapshot),
                 time.time()))

    def metrics_rows(self, study_id: str | None = None) -> list[dict]:
        query = "SELECT * FROM metrics"
        args: tuple = ()
        if study_id is not None:
            query += " WHERE study_id = ?"
            args = (study_id,)
        rows = self.connection().execute(
            query + " ORDER BY study_id, batch_index, source", args).fetchall()
        return [{**dict(row), "payload": json.loads(row["payload"])}
                for row in rows]

    def latest_metrics_snapshots(self) -> list[dict]:
        """The most recent snapshot per source (the ``/api/metrics`` input)."""
        rows = self.connection().execute(
            """SELECT m.* FROM metrics m
                 JOIN (SELECT source, MAX(created_at) AS latest
                         FROM metrics GROUP BY source) newest
                   ON m.source = newest.source
                  AND m.created_at = newest.latest
                GROUP BY m.source
                ORDER BY m.source""").fetchall()
        return [{**dict(row), "payload": json.loads(row["payload"])}
                for row in rows]

    # ------------------------------------------------------------------ #
    # BENCH records                                                       #
    # ------------------------------------------------------------------ #
    def ingest_bench_record(self, name: str, record: dict,
                            source: str = "") -> bool:
        """Store one BENCH record; returns False if it was already present."""
        with self.transaction() as conn:
            cursor = conn.execute(
                """INSERT OR IGNORE INTO bench_records
                       (name, record, source, ingested_at)
                   VALUES (?, ?, ?, ?)""",
                (name, _dump(record), source, time.time()))
            return cursor.rowcount > 0

    def bench_rows(self, name: str | None = None) -> list[dict]:
        query = "SELECT * FROM bench_records"
        args: tuple = ()
        if name is not None:
            query += " WHERE name = ?"
            args = (name,)
        rows = self.connection().execute(
            query + " ORDER BY name, ingested_at, id", args).fetchall()
        return [{**dict(row), "record": json.loads(row["record"])}
                for row in rows]


def derive_study_id(spec_dict: dict, seed: int) -> str:
    """Deterministic, human-scannable study id for a ``(spec, seed)`` pair.

    Content-addressed (a short hash of the canonical spec JSON plus the
    seed), so re-running the identical study resolves to the same row and
    the idempotent upserts make the re-run a harmless replay.
    """
    import hashlib
    digest = hashlib.sha256(
        (_dump(spec_dict) + f"#{int(seed)}").encode()).hexdigest()[:10]
    optimizer = str(spec_dict.get("optimizer", "study")).replace("/", "-")
    circuit = str(spec_dict.get("circuit", "problem")).replace("/", "-")
    return f"{optimizer}-{circuit}-s{int(seed)}-{digest}"


# ---------------------------------------------------------------------- #
# the checkpoint backend                                                  #
# ---------------------------------------------------------------------- #
class _StoreWriter:
    """Per-run writer with the :class:`CheckpointWriter` interface."""

    def __init__(self, store: ResultsStore, study_id: str,
                 resume_records: list[dict] | None = None):
        self.store = store
        self.study_id = study_id
        if resume_records:
            # Idempotent re-seed (mirrors the JSONL atomic rewrite): a
            # killed resume leaves the store at least as complete as found.
            header = resume_records[0]
            store.upsert_study(study_id, header["spec"],
                               int(header.get("seed", 0)),
                               version=int(header.get("version",
                                                      CHECKPOINT_VERSION)))
            for record in resume_records[1:]:
                store.write_batch_record(study_id, record)

    def write_header(self, spec_dict: dict, seed: int) -> None:
        self.store.upsert_study(self.study_id, spec_dict, seed)

    def write_batch(self, index: int, phase: str, evaluations,
                    n_total: int, rng=None) -> None:
        # Same record shape as CheckpointWriter.write_batch -- the store
        # holds the record verbatim, which is what keeps resumes from the
        # store bit-identical to resumes from the JSONL file.
        self.store.write_batch_record(self.study_id, {
            "kind": "batch",
            "index": int(index),
            "phase": phase,
            "n_total": int(n_total),
            "evaluations": [evaluation_to_dict(e) for e in evaluations],
            "rng_state": rng_state(rng) if rng is not None else None,
        })

    def write_metrics(self, index: int, snapshot: dict) -> None:
        """Persist the driver's per-batch telemetry snapshot (see Study)."""
        self.store.write_metrics_snapshot(
            self.study_id, index, {**snapshot, "pid": os.getpid()},
            source=f"driver-{os.getpid()}")

    def write_finish(self, n_simulations: int, stop_reason: str | None) -> None:
        self.store.set_study_status(self.study_id, "finished",
                                    stop_reason=stop_reason,
                                    n_simulations=int(n_simulations))

    def close(self) -> None:
        """Nothing to release: every write committed its own transaction."""


class StoreCheckpoint(StudyCheckpoint):
    """Checkpoint backend storing batches in a :class:`ResultsStore`.

    Drop-in for the JSONL path::

        store = ResultsStore("results.db")
        Study(spec, checkpoint=StoreCheckpoint(store, "my-study")).run()
        Study.resume(StoreCheckpoint(store, "my-study")).run()
    """

    def __init__(self, store: ResultsStore | str | os.PathLike,
                 study_id: str):
        self.store = store if isinstance(store, ResultsStore) else ResultsStore(store)
        self.study_id = str(study_id)
        self.description = f"{self.store.path}#{self.study_id}"

    def exists(self) -> bool:
        return self.store.study_exists(self.study_id)

    def read(self) -> CheckpointData:
        return self.store.read_checkpoint_data(self.study_id)

    def open_writer(self, resume_records: list[dict] | None = None) -> _StoreWriter:
        return _StoreWriter(self.store, self.study_id,
                            resume_records=resume_records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StoreCheckpoint({self.store.path!r}, {self.study_id!r})"
