"""Service-side study execution: store checkpoints, queue dispatch, resume.

:func:`run_service_study` is what ``python -m repro run --db ...`` calls.
It is :func:`repro.study.study.run_study` with the service pieces plugged
into the existing seams:

* every seed checkpoints through a
  :class:`~repro.service.store.StoreCheckpoint` instead of a JSONL file
  (same records, same bit-identical resume guarantee);
* with ``distributed=True`` each seed's engine dispatches evaluation
  batches through a :class:`~repro.service.queue.QueueBackend`, so any
  number of ``python -m repro worker`` processes shard the simulations;
* study ids are content-addressed by default
  (:func:`~repro.service.store.derive_study_id`), so re-submitting the
  identical spec replays idempotently onto the same rows.
"""

from __future__ import annotations

import json

import numpy as np

from repro.errors import OptimizationError
from repro.service.queue import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_MAX_ATTEMPTS,
    QueueBackend,
)
from repro.service.store import ResultsStore, StoreCheckpoint, derive_study_id
from repro.study.spec import StudySpec
from repro.study.study import Study, StudyResult
from repro.utils.stats import summarize_runs


def _queue_backend(store: ResultsStore, study_id: str, spec: StudySpec,
                   shard_size: int, lease_seconds: float,
                   max_attempts: int, dispatch_timeout: float | None,
                   first_batch_index: int = 0) -> QueueBackend:
    return QueueBackend(store, study_id, spec.to_dict(),
                        shard_size=shard_size, lease_seconds=lease_seconds,
                        max_attempts=max_attempts,
                        dispatch_timeout=dispatch_timeout,
                        first_batch_index=first_batch_index)


def run_service_study(spec: StudySpec, store: ResultsStore | str,
                      study_id: str | None = None,
                      callbacks: tuple = (),
                      distributed: bool = False,
                      shard_size: int = 1,
                      lease_seconds: float = DEFAULT_LEASE_SECONDS,
                      max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                      dispatch_timeout: float | None = None) -> dict[str, object]:
    """Run a (possibly multi-seed) study against the results store.

    Returns the same aggregate dict as :func:`~repro.study.study.run_study`
    plus ``study_ids`` (one per seed).  Seeds run sequentially in-process --
    with ``distributed=True`` the parallelism lives in the workers, which
    see each seed's batches as independent jobs.
    """
    spec.validate()
    store = store if isinstance(store, ResultsStore) else ResultsStore(store)
    seeds = spec.spawn_seeds()
    shared_source, shared_data = spec.build_source()
    results: list[StudyResult] = []
    study_ids: list[str] = []
    for index, seed in enumerate(seeds):
        seed_spec = spec.for_seed(seed)
        seed_id = _seed_study_id(study_id, seed_spec, seed, index, len(seeds))
        study_ids.append(seed_id)
        checkpoint = StoreCheckpoint(store, seed_id)
        resume_batches = _resumable_batches(checkpoint, seed_spec, seed_id)
        engine_backend = None
        if distributed:
            engine_backend = _queue_backend(
                store, seed_id, seed_spec, shard_size, lease_seconds,
                max_attempts, dispatch_timeout,
                first_batch_index=resume_batches or 0)
        if resume_batches is None:
            study = Study(seed_spec, callbacks=callbacks,
                          checkpoint=checkpoint,
                          engine_backend=engine_backend,
                          source=shared_source, source_data=shared_data)
        else:
            study = Study.resume(checkpoint, callbacks=callbacks,
                                 engine_backend=engine_backend)
        try:
            results.append(study.run())
        except BaseException:
            store.set_study_status(seed_id, "failed")
            raise
    return _aggregate(results, seeds, study_ids)


def _resumable_batches(checkpoint: StoreCheckpoint, seed_spec: StudySpec,
                       seed_id: str) -> int | None:
    """Batch count of an existing same-spec study, ``None`` for a fresh one.

    Re-submitting a spec resumes the stored study instead of restarting it
    (the replayed prefix consumes no simulations).  An explicit ``study_id``
    colliding with a *different* spec is refused rather than clobbered;
    content-addressed ids cannot collide.
    """
    if not checkpoint.exists():
        return None
    data = checkpoint.read()
    canonical = json.loads(json.dumps(seed_spec.to_dict(), sort_keys=True))
    if data.spec_dict != canonical:
        raise OptimizationError(
            f"study {seed_id!r} already holds a different spec; pick "
            "another --study-id (or omit it for a content-addressed one)")
    return data.n_batches


def resume_service_study(store: ResultsStore | str, study_id: str,
                         callbacks: tuple = (),
                         distributed: bool = False,
                         shard_size: int = 1,
                         lease_seconds: float = DEFAULT_LEASE_SECONDS,
                         max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                         dispatch_timeout: float | None = None) -> StudyResult:
    """Resume one interrupted study from the store (bit-identical replay)."""
    store = store if isinstance(store, ResultsStore) else ResultsStore(store)
    checkpoint = StoreCheckpoint(store, study_id)
    data = checkpoint.read()
    engine_backend = None
    if distributed:
        spec = StudySpec.from_dict(data.spec_dict)
        # Live dispatches continue at the recorded batch count, landing on
        # the job slots (and any completed results) of the interrupted run.
        engine_backend = _queue_backend(
            store, study_id, spec, shard_size, lease_seconds, max_attempts,
            dispatch_timeout, first_batch_index=data.n_batches)
    try:
        return Study.resume(checkpoint, callbacks=callbacks,
                            engine_backend=engine_backend).run()
    except BaseException:
        store.set_study_status(study_id, "failed")
        raise


def _seed_study_id(base: str | None, seed_spec: StudySpec, seed: int,
                   index: int, n_seeds: int) -> str:
    if base is None:
        return derive_study_id(seed_spec.to_dict(), seed)
    if n_seeds == 1:
        return base
    return f"{base}.seed{index}"


def _aggregate(results: list[StudyResult], seeds: list[int],
               study_ids: list[str]) -> dict[str, object]:
    if not results:
        raise OptimizationError("study produced no results")
    curves = [result.best_curve() for result in results]
    length = min(len(curve) for curve in curves)
    curves = [curve[:length] for curve in curves]
    return {
        "curves": np.asarray(curves),
        "summary": summarize_runs(curves),
        "histories": [result.history for result in results],
        "results": results,
        "seeds": seeds,
        "study_ids": study_ids,
    }
