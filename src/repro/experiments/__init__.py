"""Experiment harnesses regenerating every table and figure of the paper.

Each experiment function takes explicit budget/seed arguments so the same
code serves quick smoke benchmarks and full paper-scale runs (see
``EXPERIMENTS.md`` for the mapping and the recorded results).
"""

from repro.experiments.runner import (
    build_constrained_optimizer,
    build_fom_optimizer,
    make_source_model,
    run_repeated,
)
from repro.experiments.neuk_assessment import run_neuk_assessment
from repro.experiments.fom_experiment import run_fom_experiment
from repro.experiments.constrained_experiment import run_constrained_experiment
from repro.experiments.transfer_experiment import run_transfer_experiment
from repro.experiments.tables import run_table1, run_table2
from repro.experiments.ablation import run_mace_ablation, run_stl_ablation
from repro.experiments.reporting import (
    curves_to_rows,
    format_table,
    improvement_ratio,
    speedup_ratio,
)

__all__ = [
    "build_constrained_optimizer",
    "build_fom_optimizer",
    "make_source_model",
    "run_repeated",
    "run_neuk_assessment",
    "run_fom_experiment",
    "run_constrained_experiment",
    "run_transfer_experiment",
    "run_table1",
    "run_table2",
    "run_mace_ablation",
    "run_stl_ablation",
    "curves_to_rows",
    "format_table",
    "improvement_ratio",
    "speedup_ratio",
]
