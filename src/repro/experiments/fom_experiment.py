"""Experiment E2 (paper Fig. 4): FOM optimization on the 180 nm circuits.

Random search, SMAC-RF, MACE and KATO maximise the Eq.-2 figure of merit on
the two-stage OpAmp, three-stage OpAmp and bandgap, starting from 10 random
simulations.  The output is the best-FOM-versus-simulation-budget curve per
method, averaged over seeds -- the quantity plotted in Fig. 4(a-c).

Each (method, circuit) cell is one declarative :class:`repro.study.StudySpec`
executed by :func:`repro.study.run_study`; the shared FOM normalisation is
computed once and pinned into every spec so all curves are on one scale (as
in the paper).
"""

from __future__ import annotations

from repro.circuits import FOMProblem, make_problem
from repro.study import StudySpec, run_study

DEFAULT_METHODS = ("rs", "smac_rf", "mace", "kato")


def run_fom_experiment(circuit: str = "two_stage_opamp", technology: str = "180nm",
                       methods=DEFAULT_METHODS, n_simulations: int = 60,
                       n_init: int = 10, n_seeds: int = 3, seed: int = 0,
                       n_normalization_samples: int = 100,
                       quick: bool = True) -> dict[str, dict[str, object]]:
    """Run Fig. 4 for one circuit; returns ``{method: run_study(...) result}``."""
    # A single FOM normalisation is shared across methods and seeds so all
    # curves are on the same scale (as in the paper).
    norm_problem = FOMProblem(make_problem(circuit, technology),
                              n_normalization_samples=n_normalization_samples, rng=seed)
    normalization = norm_problem.normalization

    results: dict[str, dict[str, object]] = {}
    for method in methods:
        spec = StudySpec(optimizer=method, circuit=circuit, technology=technology,
                         n_simulations=n_simulations, n_init=n_init,
                         seed=seed, n_seeds=n_seeds, quick=quick,
                         fom=True, fom_normalization=normalization,
                         tag=f"fig4:{circuit}")
        results[method] = run_study(spec)
    return results


def fom_summary(results: dict[str, dict[str, object]]) -> dict[str, float]:
    """Final mean best-FOM per method (the right-hand edge of Fig. 4)."""
    return {method: float(result["summary"]["mean"][-1])
            for method, result in results.items()}
