"""Experiment E2 (paper Fig. 4): FOM optimization on the 180 nm circuits.

Random search, SMAC-RF, MACE and KATO maximise the Eq.-2 figure of merit on
the two-stage OpAmp, three-stage OpAmp and bandgap, starting from 10 random
simulations.  The output is the best-FOM-versus-simulation-budget curve per
method, averaged over seeds -- the quantity plotted in Fig. 4(a-c).
"""

from __future__ import annotations

import numpy as np

from repro.circuits import FOMProblem, make_problem
from repro.experiments.runner import build_fom_optimizer, run_repeated

DEFAULT_METHODS = ("rs", "smac_rf", "mace", "kato")


def run_fom_experiment(circuit: str = "two_stage_opamp", technology: str = "180nm",
                       methods=DEFAULT_METHODS, n_simulations: int = 60,
                       n_init: int = 10, n_seeds: int = 3, seed: int = 0,
                       n_normalization_samples: int = 100,
                       quick: bool = True) -> dict[str, dict[str, object]]:
    """Run Fig. 4 for one circuit; returns ``{method: run_repeated(...) result}``."""
    # A single FOM normalisation is shared across methods and seeds so all
    # curves are on the same scale (as in the paper).
    norm_problem = FOMProblem(make_problem(circuit, technology),
                              n_normalization_samples=n_normalization_samples, rng=seed)
    normalization = norm_problem.normalization

    def problem_factory():
        return FOMProblem(make_problem(circuit, technology), normalization=normalization)

    results: dict[str, dict[str, object]] = {}
    for method in methods:
        def optimizer_factory(problem, rng, method=method):
            return build_fom_optimizer(method, problem, rng, quick=quick)

        results[method] = run_repeated(problem_factory, optimizer_factory,
                                       n_simulations=n_simulations, n_init=n_init,
                                       n_seeds=n_seeds, seed=seed, constrained=False)
    return results


def fom_summary(results: dict[str, dict[str, object]]) -> dict[str, float]:
    """Final mean best-FOM per method (the right-hand edge of Fig. 4)."""
    return {method: float(result["summary"]["mean"][-1])
            for method, result in results.items()}
