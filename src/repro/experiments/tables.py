"""Experiments E4 and E8 (paper Tables 1 and 2): best-design metric tables.

Every table cell is one declarative :class:`repro.study.StudySpec` run
through the Study API; per-method seeds derive deterministically from the
experiment seed.
"""

from __future__ import annotations

from repro.baselines import evaluate_expert
from repro.circuits import make_problem
from repro.study import StudySpec, TransferSpec, run_study
from repro.utils.random import spawn_seed_ints

TABLE1_CIRCUITS = ("two_stage_opamp", "three_stage_opamp", "bandgap")
TABLE1_METHODS = ("mesmoc", "usemoc", "mace", "kato")

TABLE2_CIRCUITS = ("two_stage_opamp", "three_stage_opamp")
TABLE2_VARIANTS = ("kato", "kato_tl_node", "kato_tl_design", "kato_tl_both")


def _best_metrics(problem, history) -> dict[str, float]:
    best = history.best(constrained=True)
    if best is None:
        return {name: float("nan") for name in problem.metric_names}
    return {name: float(best.metrics[name]) for name in problem.metric_names}


def _child_seeds(seed: int, count: int) -> list[int]:
    """Independent integer seeds, one per table row (stable in ``seed``)."""
    return spawn_seed_ints(seed, count)


def _run_cell(spec: StudySpec) -> dict[str, float]:
    """One table cell: run the study, extract the best feasible metrics."""
    result = run_study(spec)["results"][0]
    return _best_metrics(result.history.problem, result.history)


def run_table1(circuits=TABLE1_CIRCUITS, methods=TABLE1_METHODS,
               technology: str = "180nm", n_simulations: int = 70,
               n_init: int = 40, seed: int = 0,
               quick: bool = True) -> dict[str, dict[str, dict[str, float]]]:
    """Best constrained designs per circuit and method (paper Table 1).

    Returns ``{circuit: {method: {metric: value}}}`` including a
    ``human_expert`` row per circuit.
    """
    table: dict[str, dict[str, dict[str, float]]] = {}
    for circuit in circuits:
        problem = make_problem(circuit, technology)
        rows: dict[str, dict[str, float]] = {}
        expert = evaluate_expert(problem)
        rows["human_expert"] = {name: float(expert.metrics[name])
                                for name in problem.metric_names}
        for method, method_seed in zip(methods, _child_seeds(seed, len(methods))):
            rows[method] = _run_cell(StudySpec(
                optimizer=method, circuit=circuit, technology=technology,
                n_simulations=n_simulations, n_init=n_init,
                seed=method_seed, quick=quick, tag=f"table1:{circuit}"))
        table[circuit] = rows
    return table


def _table2_transfer(variant: str, circuit: str, n_source: int,
                     seed: int) -> TransferSpec | None:
    """Transfer configuration for each Table 2 variant."""
    other = ("three_stage_opamp" if circuit == "two_stage_opamp"
             else "two_stage_opamp")
    if variant == "kato":
        return None
    if variant == "kato_tl_node":
        return TransferSpec(circuit=circuit, technology="180nm",
                            n_samples=n_source, seed=seed)
    if variant == "kato_tl_design":
        return TransferSpec(circuit=other, technology="40nm",
                            n_samples=n_source, seed=seed)
    if variant == "kato_tl_both":
        return TransferSpec(circuit=other, technology="180nm",
                            n_samples=n_source, seed=seed)
    raise ValueError(f"unknown Table 2 variant {variant!r}")


def run_table2(circuits=TABLE2_CIRCUITS, variants=TABLE2_VARIANTS,
               n_simulations: int = 60, n_init: int = 30,
               n_source_samples: int = 80, seed: int = 0,
               quick: bool = True) -> dict[str, dict[str, dict[str, float]]]:
    """Best constrained 40 nm designs for the KATO transfer variants (Table 2)."""
    table: dict[str, dict[str, dict[str, float]]] = {}
    for circuit in circuits:
        problem = make_problem(circuit, "40nm")
        rows: dict[str, dict[str, float]] = {}
        expert = evaluate_expert(problem)
        rows["human_expert"] = {name: float(expert.metrics[name])
                                for name in problem.metric_names}
        for variant, variant_seed in zip(variants, _child_seeds(seed, len(variants))):
            transfer = _table2_transfer(variant, circuit, n_source_samples, seed)
            rows[variant] = _run_cell(StudySpec(
                optimizer="kato" if transfer is None else "kato_tl",
                circuit=circuit, technology="40nm",
                n_simulations=n_simulations, n_init=n_init,
                seed=variant_seed, quick=quick, transfer=transfer,
                tag=f"table2:{circuit}:{variant}"))
        table[circuit] = rows
    return table
