"""Experiments E4 and E8 (paper Tables 1 and 2): best-design metric tables."""

from __future__ import annotations

import numpy as np

from repro.baselines import evaluate_expert
from repro.circuits import make_problem
from repro.experiments.runner import (
    build_constrained_optimizer,
    make_source_model,
)
from repro.utils.random import spawn_rngs

TABLE1_CIRCUITS = ("two_stage_opamp", "three_stage_opamp", "bandgap")
TABLE1_METHODS = ("mesmoc", "usemoc", "mace", "kato")

TABLE2_CIRCUITS = ("two_stage_opamp", "three_stage_opamp")
TABLE2_VARIANTS = ("kato", "kato_tl_node", "kato_tl_design", "kato_tl_both")


def _best_metrics(problem, history) -> dict[str, float]:
    best = history.best(constrained=True)
    if best is None:
        return {name: float("nan") for name in problem.metric_names}
    return {name: float(best.metrics[name]) for name in problem.metric_names}


def run_table1(circuits=TABLE1_CIRCUITS, methods=TABLE1_METHODS,
               technology: str = "180nm", n_simulations: int = 70,
               n_init: int = 40, seed: int = 0,
               quick: bool = True) -> dict[str, dict[str, dict[str, float]]]:
    """Best constrained designs per circuit and method (paper Table 1).

    Returns ``{circuit: {method: {metric: value}}}`` including a
    ``human_expert`` row per circuit.
    """
    table: dict[str, dict[str, dict[str, float]]] = {}
    for circuit in circuits:
        problem = make_problem(circuit, technology)
        rows: dict[str, dict[str, float]] = {}
        expert = evaluate_expert(problem)
        rows["human_expert"] = {name: float(expert.metrics[name])
                                for name in problem.metric_names}
        for method, rng in zip(methods, spawn_rngs(seed, len(methods))):
            run_problem = make_problem(circuit, technology)
            optimizer = build_constrained_optimizer(method, run_problem, rng, quick=quick)
            history = optimizer.optimize(n_simulations=n_simulations, n_init=n_init)
            rows[method] = _best_metrics(run_problem, history)
        table[circuit] = rows
    return table


def _table2_source(variant: str, circuit: str, n_source: int, seed: int):
    """Source model for each Table 2 transfer variant."""
    other = ("three_stage_opamp" if circuit == "two_stage_opamp"
             else "two_stage_opamp")
    if variant == "kato":
        return None
    if variant == "kato_tl_node":
        return make_source_model(circuit, "180nm", n_samples=n_source, seed=seed)
    if variant == "kato_tl_design":
        return make_source_model(other, "40nm", n_samples=n_source, seed=seed)
    if variant == "kato_tl_both":
        return make_source_model(other, "180nm", n_samples=n_source, seed=seed)
    raise ValueError(f"unknown Table 2 variant {variant!r}")


def run_table2(circuits=TABLE2_CIRCUITS, variants=TABLE2_VARIANTS,
               n_simulations: int = 60, n_init: int = 30,
               n_source_samples: int = 80, seed: int = 0,
               quick: bool = True) -> dict[str, dict[str, dict[str, float]]]:
    """Best constrained 40 nm designs for the KATO transfer variants (Table 2)."""
    table: dict[str, dict[str, dict[str, float]]] = {}
    for circuit in circuits:
        problem = make_problem(circuit, "40nm")
        rows: dict[str, dict[str, float]] = {}
        expert = evaluate_expert(problem)
        rows["human_expert"] = {name: float(expert.metrics[name])
                                for name in problem.metric_names}
        for variant, rng in zip(variants, spawn_rngs(seed, len(variants))):
            source = _table2_source(variant, circuit, n_source_samples, seed)
            run_problem = make_problem(circuit, "40nm")
            method = "kato" if source is None else "kato_tl"
            optimizer = build_constrained_optimizer(method, run_problem, rng,
                                                    source=source, quick=quick)
            history = optimizer.optimize(n_simulations=n_simulations, n_init=n_init)
            rows[variant] = _best_metrics(run_problem, history)
        table[circuit] = rows
    return table
