"""Shared experiment plumbing: optimizer factories and repeated runs."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.baselines import MESMOC, TLMBO, USeMOC
from repro.bo import ConstrainedMACE, MACE, OptimizationHistory, RandomSearch, SMACRF
from repro.bo.problem import OptimizationProblem
from repro.circuits import FOMProblem, make_problem
from repro.core import KATO, KATOConfig, SourceModel
from repro.engine import ExecutionBackend, resolve_backend
from repro.utils.random import spawn_rngs
from repro.utils.stats import summarize_runs


def make_source_model(circuit: str, technology: str, n_samples: int = 200,
                      seed: int = 0, train_iters: int = 60,
                      fom: bool = False) -> SourceModel:
    """Build a frozen source model from random simulations of a source circuit.

    This mirrors the paper's transfer setup ("each experiment provides 200
    random samples for the source data").  With ``fom=True`` the source
    outputs are the scalar FOM instead of the raw metric vector.
    """
    problem = make_problem(circuit, technology)
    if fom:
        problem = FOMProblem(problem, n_normalization_samples=min(100, n_samples), rng=seed)
    rng = np.random.default_rng(seed)
    designs = problem.design_space.sample(n_samples, rng=rng)
    evaluations = problem.evaluate_batch(designs)
    x_unit = problem.design_space.to_unit(np.array([e.x for e in evaluations]))
    if fom:
        y = np.array([[e.metrics["fom"]] for e in evaluations])
        names = ["fom"]
    else:
        y = problem.metrics_matrix(evaluations)
        names = problem.metric_names
    return SourceModel(x_unit, y, metric_names=names, train_iters=train_iters)


def _kato_config(quick: bool) -> KATOConfig:
    if quick:
        return KATOConfig(batch_size=4, surrogate_train_iters=20, kat_train_iters=60,
                          pop_size=32, n_generations=10)
    return KATOConfig()


def build_fom_optimizer(name: str, problem: OptimizationProblem, rng,
                        source: SourceModel | None = None,
                        source_data: tuple[np.ndarray, np.ndarray] | None = None,
                        quick: bool = True):
    """Factory for the FOM (unconstrained) experiment methods of Fig. 4 / 6a-b."""
    key = name.lower()
    if key in ("rs", "random", "random_search"):
        return RandomSearch(problem, batch_size=4, rng=rng)
    if key in ("smac", "smac_rf", "smac-rf"):
        return SMACRF(problem, batch_size=4, rng=rng)
    if key == "mace":
        iters = 20 if quick else 50
        return MACE(problem, batch_size=4, rng=rng, surrogate_train_iters=iters,
                    pop_size=32 if quick else 64, n_generations=10 if quick else 30)
    if key == "kato":
        return KATO(problem, source=None, config=_kato_config(quick), rng=rng)
    if key in ("kato_tl", "kato-tl"):
        return KATO(problem, source=source, config=_kato_config(quick), rng=rng)
    if key == "tlmbo":
        if source_data is None:
            raise ValueError("TLMBO requires source_data=(x_unit, y)")
        return TLMBO(problem, source_x=source_data[0], source_y=source_data[1],
                     batch_size=4, rng=rng)
    raise ValueError(f"unknown FOM method {name!r}")


def build_constrained_optimizer(name: str, problem: OptimizationProblem, rng,
                                source: SourceModel | None = None,
                                quick: bool = True):
    """Factory for the constrained experiment methods of Fig. 5 / 6 and the tables."""
    key = name.lower()
    iters = 20 if quick else 50
    pop = 32 if quick else 64
    gens = 10 if quick else 30
    if key == "mesmoc":
        return MESMOC(problem, batch_size=4, rng=rng, surrogate_train_iters=iters)
    if key == "usemoc":
        return USeMOC(problem, batch_size=4, rng=rng, surrogate_train_iters=iters,
                      pop_size=pop, n_generations=gens)
    if key == "mace":
        return ConstrainedMACE(problem, batch_size=4, rng=rng, variant="full",
                               surrogate_train_iters=iters, pop_size=pop,
                               n_generations=gens)
    if key == "mace_modified":
        return ConstrainedMACE(problem, batch_size=4, rng=rng, variant="modified",
                               surrogate_train_iters=iters, pop_size=pop,
                               n_generations=gens)
    if key == "kato":
        return KATO(problem, source=None, config=_kato_config(quick), rng=rng)
    if key in ("kato_tl", "kato-tl"):
        return KATO(problem, source=source, config=_kato_config(quick), rng=rng)
    raise ValueError(f"unknown constrained method {name!r}")


def _run_one_seed(task: tuple) -> tuple[np.ndarray, OptimizationHistory]:
    """One independent repetition of an experiment (a backend work item).

    Top-level so it is picklable for the process backend; the factories it
    receives must then be module-level functions or other picklable
    callables (lambdas and closures only work with serial/thread backends).
    """
    problem_factory, optimizer_factory, run_rng, n_simulations, n_init, constrained = task
    problem = problem_factory()
    optimizer = optimizer_factory(problem, run_rng)
    history = optimizer.optimize(n_simulations=n_simulations, n_init=n_init)
    return history.best_curve(constrained=constrained), history


def run_repeated(problem_factory: Callable[[], OptimizationProblem],
                 optimizer_factory: Callable[[OptimizationProblem, object], object],
                 n_simulations: int, n_init: int, n_seeds: int = 3,
                 seed: int = 0, constrained: bool = True,
                 backend: str | ExecutionBackend | None = "serial",
                 ) -> dict[str, object]:
    """Run one method over several seeds and aggregate the best-so-far curves.

    The repetitions are fully independent solves, so they fan out across the
    execution ``backend`` (``"serial"`` by default, which reproduces the
    sequential behaviour exactly; ``"thread"``/``"process"`` or an
    :class:`~repro.engine.ExecutionBackend` instance run seeds concurrently).
    Seed-to-rng assignment is identical for every backend, so results only
    ever differ in wall-clock time.

    Returns a dictionary with the per-seed curves, their summary statistics
    and the final histories (for table extraction).
    """
    tasks = [(problem_factory, optimizer_factory, run_rng,
              n_simulations, n_init, constrained)
             for run_rng in spawn_rngs(seed, n_seeds)]
    # Shut down pools we created here; caller-supplied instances and the
    # process-wide shared default (backend=None) stay alive so their pools
    # can be shared across several run_repeated calls.
    owns_backend = backend is not None and not isinstance(backend, ExecutionBackend)
    resolved = resolve_backend(backend)
    try:
        outcomes = resolved.map(_run_one_seed, tasks)
    finally:
        if owns_backend:
            resolved.shutdown()
    curves = [curve for curve, _ in outcomes]
    histories = [history for _, history in outcomes]
    length = min(len(c) for c in curves)
    curves = [c[:length] for c in curves]
    return {
        "curves": np.asarray(curves),
        "summary": summarize_runs(curves),
        "histories": histories,
    }
