"""Shared experiment plumbing: repeated runs and deprecated optimizer shims.

The ``if/elif`` optimizer factories that used to live here were replaced by
the decorator-based registry in :mod:`repro.study.registry`;
:func:`build_fom_optimizer` and :func:`build_constrained_optimizer` remain as
thin deprecated shims so old scripts keep working, and
:func:`make_source_model` is re-exported from :mod:`repro.study.sources`.
New code should go through :class:`repro.study.StudySpec` /
:func:`repro.study.run_study` (or :func:`repro.study.build_optimizer` when a
bare optimizer instance is needed).
"""

from __future__ import annotations

import warnings
from typing import Callable

import numpy as np

from repro.bo import OptimizationHistory
from repro.bo.problem import OptimizationProblem
from repro.engine import ExecutionBackend, resolve_backend
from repro.study.registry import build_optimizer as _registry_build
from repro.study.sources import make_source_model
from repro.utils.random import spawn_rngs
from repro.utils.stats import summarize_runs

__all__ = ["make_source_model", "build_fom_optimizer",
           "build_constrained_optimizer", "run_repeated"]


def _deprecated_shim(shim: str) -> None:
    warnings.warn(
        f"{shim} is deprecated; resolve optimizers through the registry "
        "(repro.study.build_optimizer) or run them via repro.study.Study",
        DeprecationWarning, stacklevel=3)


def build_fom_optimizer(name: str, problem: OptimizationProblem, rng,
                        source=None, source_data=None, quick: bool = True):
    """Deprecated shim for the FOM (unconstrained) methods of Fig. 4 / 6a-b.

    Alias handling, configuration and "did you mean" errors now come from
    one registry table shared with the CLI and the Study API.
    """
    _deprecated_shim("build_fom_optimizer")
    # As before: plain "kato" ignores a provided source (the w/o-TL ablation).
    return _registry_build(name, problem, rng, quick=quick, source=source,
                           source_data=source_data)


def build_constrained_optimizer(name: str, problem: OptimizationProblem, rng,
                                source=None, quick: bool = True):
    """Deprecated shim for the constrained methods of Fig. 5 / 6 and the tables."""
    _deprecated_shim("build_constrained_optimizer")
    return _registry_build(name, problem, rng, quick=quick, source=source)


def _run_one_seed(task: tuple) -> tuple[np.ndarray, OptimizationHistory]:
    """One independent repetition of an experiment (a backend work item).

    Top-level so it is picklable for the process backend; the factories it
    receives must then be module-level functions or other picklable
    callables (lambdas and closures only work with serial/thread backends).
    """
    problem_factory, optimizer_factory, run_rng, n_simulations, n_init, constrained = task
    problem = problem_factory()
    optimizer = optimizer_factory(problem, run_rng)
    history = optimizer.optimize(n_simulations=n_simulations, n_init=n_init)
    return history.best_curve(constrained=constrained), history


def run_repeated(problem_factory: Callable[[], OptimizationProblem],
                 optimizer_factory: Callable[[OptimizationProblem, object], object],
                 n_simulations: int, n_init: int, n_seeds: int = 3,
                 seed: int = 0, constrained: bool = True,
                 backend: str | ExecutionBackend | None = "serial",
                 ) -> dict[str, object]:
    """Run one method over several seeds and aggregate the best-so-far curves.

    This is the factory-based counterpart of :func:`repro.study.run_study`
    for problems/optimizers that are not registry-expressible (ad-hoc
    callables, mutated optimizer instances).  Declarative runs should prefer
    ``run_study``, which adds callbacks and checkpoint/resume.

    The repetitions are fully independent solves, so they fan out across the
    execution ``backend`` (``"serial"`` by default, which reproduces the
    sequential behaviour exactly; ``"thread"``/``"process"`` or an
    :class:`~repro.engine.ExecutionBackend` instance run seeds concurrently).
    Seed-to-rng assignment is identical for every backend, so results only
    ever differ in wall-clock time.

    Returns a dictionary with the per-seed curves, their summary statistics
    and the final histories (for table extraction).
    """
    tasks = [(problem_factory, optimizer_factory, run_rng,
              n_simulations, n_init, constrained)
             for run_rng in spawn_rngs(seed, n_seeds)]
    # Shut down pools we created here; caller-supplied instances and the
    # process-wide shared default (backend=None) stay alive so their pools
    # can be shared across several run_repeated calls.
    owns_backend = backend is not None and not isinstance(backend, ExecutionBackend)
    resolved = resolve_backend(backend)
    try:
        outcomes = resolved.map(_run_one_seed, tasks)
    finally:
        if owns_backend:
            resolved.shutdown()
    curves = [curve for curve, _ in outcomes]
    histories = [history for _, history in outcomes]
    length = min(len(c) for c in curves)
    curves = [c[:length] for c in curves]
    return {
        "curves": np.asarray(curves),
        "summary": summarize_runs(curves),
        "histories": histories,
    }
