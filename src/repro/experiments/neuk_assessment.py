"""Experiment E1 (paper Fig. 1b): Neural Kernel regression assessment.

The paper fits GPs with different kernels to 100 training points of a 180 nm
"second-stage amplification circuit" and compares test error on 50 held-out
points.  Here the two-stage OpAmp testbench provides the data (the gain
metric is the regression target) and the same kernel line-up is compared:
RBF, RQ, Matern-5/2, DKL and Neuk.
"""

from __future__ import annotations

import numpy as np

from repro.circuits import make_problem
from repro.gp import GPRegression
from repro.kernels import (
    DeepKernel,
    Matern52Kernel,
    NeuralKernel,
    RBFKernel,
    RationalQuadraticKernel,
)
from repro.utils.random import as_rng

_DEFAULT_KERNELS = ("rbf", "rq", "matern52", "dkl", "neuk")


def _make_kernel(name: str, dim: int, rng):
    name = name.lower()
    if name == "rbf":
        return RBFKernel(dim)
    if name == "rq":
        return RationalQuadraticKernel(dim)
    if name == "matern52":
        return Matern52Kernel(dim)
    if name == "dkl":
        return DeepKernel(dim, rng=rng)
    if name == "neuk":
        return NeuralKernel(dim, rng=rng)
    raise ValueError(f"unknown kernel {name!r}")


def run_neuk_assessment(circuit: str = "two_stage_opamp", technology: str = "180nm",
                        target_metric: str = "gain", n_train: int = 100,
                        n_test: int = 50, kernels=_DEFAULT_KERNELS,
                        train_iters: int = 120, seed: int = 0) -> dict[str, dict[str, float]]:
    """Compare kernels on a circuit regression task (paper Fig. 1b).

    Returns ``{kernel_name: {"rmse": ..., "mae": ..., "nlml": ...}}``.
    """
    rng = as_rng(seed)
    problem = make_problem(circuit, technology)
    designs = problem.design_space.sample(n_train + n_test, rng=rng)
    evaluations = problem.evaluate_batch(designs)
    metric_index = problem.metric_names.index(target_metric)
    y = problem.metrics_matrix(evaluations)[:, metric_index]
    x = problem.design_space.to_unit(np.array([e.x for e in evaluations]))
    # Clip pathological failure values (non-converged designs report huge
    # sentinel metrics) so the regression target is well scaled: keep values
    # within a robust band around the median.
    median = np.median(y)
    mad = np.median(np.abs(y - median)) + 1e-9
    finite = np.clip(y, median - 10.0 * mad, median + 10.0 * mad)
    x_train, y_train = x[:n_train], finite[:n_train]
    x_test, y_test = x[n_train:], finite[n_train:]

    results: dict[str, dict[str, float]] = {}
    for name in kernels:
        kernel_rng = as_rng(int(rng.integers(0, 2**31 - 1)))
        model = GPRegression(kernel=_make_kernel(name, x.shape[1], kernel_rng))
        model.fit(x_train, y_train, n_iters=train_iters)
        mean, _ = model.predict(x_test)
        rmse = float(np.sqrt(np.mean((mean - y_test) ** 2)))
        mae = float(np.mean(np.abs(mean - y_test)))
        results[name] = {
            "rmse": rmse,
            "mae": mae,
            "nlml": -model.log_marginal_likelihood(),
        }
    return results
