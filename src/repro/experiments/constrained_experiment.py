"""Experiment E3 (paper Fig. 5): constrained optimization on the 180 nm circuits.

MESMOC, USeMOC, constrained MACE and KATO minimise the objective subject to
the specification constraints.  As in the paper, every method starts from the
same pool of random initial designs (300 in the paper; configurable here) and
only feasible designs improve the reported best-so-far curve.

Each method is one declarative :class:`repro.study.StudySpec` executed by
:func:`repro.study.run_study`.
"""

from __future__ import annotations

from repro.study import StudySpec, run_study

DEFAULT_METHODS = ("mesmoc", "usemoc", "mace", "kato")


def run_constrained_experiment(circuit: str = "two_stage_opamp",
                               technology: str = "180nm",
                               methods=DEFAULT_METHODS,
                               n_simulations: int = 80, n_init: int = 40,
                               n_seeds: int = 3, seed: int = 0,
                               quick: bool = True) -> dict[str, dict[str, object]]:
    """Run Fig. 5 for one circuit; returns ``{method: run_study(...) result}``."""
    results: dict[str, dict[str, object]] = {}
    for method in methods:
        spec = StudySpec(optimizer=method, circuit=circuit, technology=technology,
                         n_simulations=n_simulations, n_init=n_init,
                         seed=seed, n_seeds=n_seeds, quick=quick,
                         tag=f"fig5:{circuit}")
        results[method] = run_study(spec)
    return results


def constrained_summary(results: dict[str, dict[str, object]],
                        minimize: bool = True) -> dict[str, float]:
    """Final mean best feasible objective per method (right edge of Fig. 5)."""
    summary = {}
    for method, result in results.items():
        final = result["summary"]["mean"][-1]
        summary[method] = float(final)
    return summary
