"""Report formatting and the headline speedup/improvement ratios (E11)."""

from __future__ import annotations

import numpy as np


def format_table(rows: dict[str, dict[str, float]], title: str = "",
                 float_format: str = "{:.2f}") -> str:
    """Render ``{row_name: {column: value}}`` as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)"
    columns: list[str] = []
    for row in rows.values():
        for key in row:
            if key not in columns:
                columns.append(key)
    header = ["method", *columns]
    widths = [max(len(header[0]), *(len(str(r)) for r in rows))]
    body: list[list[str]] = []
    for name, row in rows.items():
        cells = [str(name)]
        for column in columns:
            value = row.get(column, float("nan"))
            if isinstance(value, (int, float, np.floating)):
                cells.append(float_format.format(float(value)))
            else:
                cells.append(str(value))
        body.append(cells)
    for index in range(1, len(header)):
        column_cells = [header[index]] + [row[index] for row in body]
        widths.append(max(len(cell) for cell in column_cells))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def curves_to_rows(results: dict[str, dict[str, object]],
                   budgets: list[int] | None = None) -> dict[str, dict[str, float]]:
    """Convert per-method curve summaries into table rows at selected budgets."""
    rows: dict[str, dict[str, float]] = {}
    for method, result in results.items():
        mean_curve = np.asarray(result["summary"]["mean"])
        points = budgets or [len(mean_curve) // 2, len(mean_curve)]
        row = {}
        for budget in points:
            index = min(max(int(budget), 1), len(mean_curve)) - 1
            row[f"best@{index + 1}"] = float(mean_curve[index])
        rows[method] = row
    return rows


def improvement_ratio(candidate_best: float, reference_best: float,
                      minimize: bool) -> float:
    """How much better the candidate's final value is than the reference's.

    A ratio above 1 means the candidate found a better design (the paper's
    "1.2x design improvement" metric).
    """
    if minimize:
        if abs(candidate_best) < 1e-30:
            return float("inf")
        return float(reference_best / candidate_best)
    if abs(reference_best) < 1e-30:
        return float("inf")
    return float(candidate_best / reference_best)


def speedup_ratio(candidate_curve, reference_curve, minimize: bool) -> float:
    """Simulation-count speedup to reach the reference method's final value.

    Defined as in the paper: (simulations the reference needed) divided by
    (simulations the candidate needed to reach the reference's best value).
    Returns ``inf`` when the candidate never reaches it, and 1.0 when both
    need their full budgets.
    """
    candidate_curve = np.asarray(candidate_curve, dtype=float)
    reference_curve = np.asarray(reference_curve, dtype=float)
    target = reference_curve[-1]
    if minimize:
        hits = np.nonzero(candidate_curve <= target)[0]
    else:
        hits = np.nonzero(candidate_curve >= target)[0]
    if hits.size == 0:
        return 0.0
    candidate_cost = int(hits[0]) + 1
    reference_cost = len(reference_curve)
    return float(reference_cost / candidate_cost)
