"""Experiments E5-E7 (paper Fig. 6): transfer learning across nodes and designs.

The six panels of Fig. 6 are all instances of one experiment shape: build a
source model from random simulations of a source circuit (a different
technology node, a different topology, or both), then compare KATO with and
without transfer on the target circuit.  TLMBO joins the comparison whenever
the source and target design spaces match (technology-only transfer), which
is the only setting it supports.

Each method is one declarative :class:`repro.study.StudySpec`; the transfer
source is part of the spec (:class:`repro.study.TransferSpec`), so a panel
run is fully described by serializable data.
"""

from __future__ import annotations

from repro.circuits import FOMProblem, make_problem
from repro.study import StudySpec, TransferSpec, run_study

#: (source_circuit, source_tech, target_circuit, target_tech) per Fig. 6 panel.
FIG6_PANELS = {
    "a": ("two_stage_opamp", "180nm", "two_stage_opamp", "40nm"),
    "b": ("three_stage_opamp", "180nm", "three_stage_opamp", "40nm"),
    "c": ("three_stage_opamp", "40nm", "two_stage_opamp", "40nm"),
    "d": ("two_stage_opamp", "40nm", "three_stage_opamp", "40nm"),
    "e": ("three_stage_opamp", "180nm", "two_stage_opamp", "40nm"),
    "f": ("two_stage_opamp", "180nm", "three_stage_opamp", "40nm"),
}


def run_transfer_experiment(source_circuit: str, source_technology: str,
                            target_circuit: str, target_technology: str,
                            constrained: bool = True,
                            n_source_samples: int = 100,
                            n_simulations: int = 60, n_init: int = 30,
                            n_seeds: int = 2, seed: int = 0,
                            include_tlmbo: bool | None = None,
                            quick: bool = True) -> dict[str, dict[str, object]]:
    """One Fig. 6 panel: KATO vs KATO(TL) (vs TLMBO when applicable)."""
    same_space = (source_circuit == target_circuit)
    if include_tlmbo is None:
        include_tlmbo = same_space and not constrained

    fom = not constrained
    fom_normalization = None
    if fom:
        # One normalisation shared by all methods and seeds (paper scale).
        norm_problem = FOMProblem(make_problem(target_circuit, target_technology),
                                  n_normalization_samples=60, rng=seed)
        fom_normalization = norm_problem.normalization

    transfer = TransferSpec(circuit=source_circuit, technology=source_technology,
                            n_samples=n_source_samples, seed=seed)

    def panel_spec(method: str, method_transfer: TransferSpec | None) -> StudySpec:
        return StudySpec(optimizer=method, circuit=target_circuit,
                         technology=target_technology,
                         n_simulations=n_simulations, n_init=n_init,
                         seed=seed, n_seeds=n_seeds, quick=quick,
                         fom=fom, fom_normalization=fom_normalization,
                         transfer=method_transfer,
                         tag=f"fig6:{source_circuit}@{source_technology}->"
                             f"{target_circuit}@{target_technology}")

    specs: dict[str, StudySpec] = {
        "kato": panel_spec("kato", None),
        "kato_tl": panel_spec("kato_tl", transfer),
    }
    if include_tlmbo and same_space:
        # TLMBO consumes raw (x, FOM) source observations; a fom=True
        # transfer spec (with its own seed, as in the original harness)
        # provides them.
        specs["tlmbo"] = panel_spec("tlmbo", TransferSpec(
            circuit=source_circuit, technology=source_technology,
            n_samples=n_source_samples, seed=seed + 1, fom=True))

    return {name: run_study(spec) for name, spec in specs.items()}


def run_fig6_panel(panel: str, **kwargs) -> dict[str, dict[str, object]]:
    """Run one named panel of Fig. 6 (``"a"`` .. ``"f"``)."""
    key = panel.lower()
    if key not in FIG6_PANELS:
        raise KeyError(f"unknown Fig. 6 panel {panel!r}; available: {sorted(FIG6_PANELS)}")
    source_circuit, source_tech, target_circuit, target_tech = FIG6_PANELS[key]
    return run_transfer_experiment(source_circuit, source_tech,
                                   target_circuit, target_tech, **kwargs)
