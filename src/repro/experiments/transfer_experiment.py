"""Experiments E5-E7 (paper Fig. 6): transfer learning across nodes and designs.

The six panels of Fig. 6 are all instances of one experiment shape: build a
source model from random simulations of a source circuit (a different
technology node, a different topology, or both), then compare KATO with and
without transfer on the target circuit.  TLMBO joins the comparison whenever
the source and target design spaces match (technology-only transfer), which
is the only setting it supports.
"""

from __future__ import annotations

import numpy as np

from repro.circuits import FOMProblem, make_problem
from repro.core import SourceModel
from repro.experiments.runner import (
    build_constrained_optimizer,
    build_fom_optimizer,
    make_source_model,
    run_repeated,
)

#: (source_circuit, source_tech, target_circuit, target_tech) per Fig. 6 panel.
FIG6_PANELS = {
    "a": ("two_stage_opamp", "180nm", "two_stage_opamp", "40nm"),
    "b": ("three_stage_opamp", "180nm", "three_stage_opamp", "40nm"),
    "c": ("three_stage_opamp", "40nm", "two_stage_opamp", "40nm"),
    "d": ("two_stage_opamp", "40nm", "three_stage_opamp", "40nm"),
    "e": ("three_stage_opamp", "180nm", "two_stage_opamp", "40nm"),
    "f": ("two_stage_opamp", "180nm", "three_stage_opamp", "40nm"),
}


def run_transfer_experiment(source_circuit: str, source_technology: str,
                            target_circuit: str, target_technology: str,
                            constrained: bool = True,
                            n_source_samples: int = 100,
                            n_simulations: int = 60, n_init: int = 30,
                            n_seeds: int = 2, seed: int = 0,
                            include_tlmbo: bool | None = None,
                            quick: bool = True) -> dict[str, dict[str, object]]:
    """One Fig. 6 panel: KATO vs KATO(TL) (vs TLMBO when applicable)."""
    source = make_source_model(source_circuit, source_technology,
                               n_samples=n_source_samples, seed=seed)
    same_space = (source_circuit == target_circuit)
    if include_tlmbo is None:
        include_tlmbo = same_space and not constrained

    if constrained:
        def problem_factory():
            return make_problem(target_circuit, target_technology)
    else:
        norm_problem = FOMProblem(make_problem(target_circuit, target_technology),
                                  n_normalization_samples=60, rng=seed)
        normalization = norm_problem.normalization

        def problem_factory():
            return FOMProblem(make_problem(target_circuit, target_technology),
                              normalization=normalization)

    methods: dict[str, object] = {}

    def kato_factory(problem, rng):
        builder = build_constrained_optimizer if constrained else build_fom_optimizer
        return builder("kato", problem, rng, quick=quick)

    def kato_tl_factory(problem, rng):
        builder = build_constrained_optimizer if constrained else build_fom_optimizer
        return builder("kato_tl", problem, rng, source=source, quick=quick)

    methods["kato"] = kato_factory
    methods["kato_tl"] = kato_tl_factory

    if include_tlmbo and same_space:
        source_fom = make_source_model(source_circuit, source_technology,
                                       n_samples=n_source_samples, seed=seed + 1,
                                       fom=True)
        source_data = (source_fom.x, source_fom.y[:, 0])

        def tlmbo_factory(problem, rng):
            return build_fom_optimizer("tlmbo", problem, rng,
                                       source_data=source_data, quick=quick)

        methods["tlmbo"] = tlmbo_factory

    results: dict[str, dict[str, object]] = {}
    for name, factory in methods.items():
        results[name] = run_repeated(problem_factory, factory,
                                     n_simulations=n_simulations, n_init=n_init,
                                     n_seeds=n_seeds, seed=seed,
                                     constrained=constrained)
    return results


def run_fig6_panel(panel: str, **kwargs) -> dict[str, dict[str, object]]:
    """Run one named panel of Fig. 6 (``"a"`` .. ``"f"``)."""
    key = panel.lower()
    if key not in FIG6_PANELS:
        raise KeyError(f"unknown Fig. 6 panel {panel!r}; available: {sorted(FIG6_PANELS)}")
    source_circuit, source_tech, target_circuit, target_tech = FIG6_PANELS[key]
    return run_transfer_experiment(source_circuit, source_tech,
                                   target_circuit, target_tech, **kwargs)
