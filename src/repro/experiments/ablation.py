"""Ablations E9 and E10: design choices called out in DESIGN.md.

* :func:`run_mace_ablation` -- six-objective vs three-objective constrained
  MACE (the claim behind paper Eq. 13 is "same performance, lower cost").
* :func:`run_stl_ablation` -- selective transfer vs always-transfer vs
  never-transfer when the source is deliberately mismatched (the scenario
  motivating paper section 3.4).

Both run through the Study API; the "always-transfer" arm (which rigs
KATO's selective-transfer bandit) uses :class:`repro.study.Study`'s
``optimizer_factory`` escape hatch, since a rigged optimizer is not
expressible as declarative spec data.
"""

from __future__ import annotations

import time

import numpy as np

from repro.study import Study, StudySpec, TransferSpec, run_study
from repro.study.sources import make_source_model


def run_mace_ablation(circuit: str = "two_stage_opamp", technology: str = "180nm",
                      n_simulations: int = 60, n_init: int = 30, n_seeds: int = 2,
                      seed: int = 0, quick: bool = True) -> dict[str, dict[str, float]]:
    """Compare the full (six-objective) and modified (three-objective) ensembles.

    Returns per-variant mean final best objective and mean wall-clock time of
    the acquisition loop, the trade-off paper section 3.3 argues about.
    """
    results: dict[str, dict[str, float]] = {}
    for variant in ("mace", "mace_modified"):
        spec = StudySpec(optimizer=variant, circuit=circuit, technology=technology,
                         n_simulations=n_simulations, n_init=n_init,
                         seed=seed, n_seeds=n_seeds, quick=quick,
                         tag=f"ablation:mace:{variant}")
        start = time.perf_counter()
        outcome = run_study(spec)
        elapsed = time.perf_counter() - start
        results[variant] = {
            "mean_best_objective": float(np.mean(outcome["curves"][:, -1])),
            "mean_wall_time_s": float(elapsed / n_seeds),
        }
    return results


def run_stl_ablation(target_circuit: str = "two_stage_opamp",
                     target_technology: str = "40nm",
                     mismatched_source_circuit: str = "bandgap",
                     n_source_samples: int = 60,
                     n_simulations: int = 48, n_init: int = 24, n_seeds: int = 2,
                     seed: int = 0, quick: bool = True) -> dict[str, dict[str, float]]:
    """STL vs always-transfer vs never-transfer with a mismatched source.

    The source is the bandgap (a very different circuit), the setting where
    blind transfer is expected to hurt and STL is expected to hold its own.
    """
    transfer = TransferSpec(circuit=mismatched_source_circuit, technology="180nm",
                            n_samples=n_source_samples, seed=seed)

    def base_spec(optimizer: str, mode: str) -> StudySpec:
        return StudySpec(optimizer=optimizer, circuit=target_circuit,
                         technology=target_technology,
                         n_simulations=n_simulations, n_init=n_init,
                         seed=seed, n_seeds=n_seeds, quick=quick,
                         transfer=transfer if optimizer == "kato_tl" else None,
                         tag=f"ablation:stl:{mode}")

    results: dict[str, dict[str, float]] = {}
    for mode in ("stl", "always", "never"):
        if mode == "never":
            outcome = run_study(base_spec("kato", mode))
        elif mode == "stl":
            outcome = run_study(base_spec("kato_tl", mode))
        else:
            # Rigged arm: force all proposals through the KAT-GP model by
            # giving the target-only model a negligible bandit weight.  The
            # optimizer itself comes from the registry builder, so all
            # three arms share one quick-scale configuration.
            spec = base_spec("kato_tl", mode)
            source = make_source_model(mismatched_source_circuit, "180nm",
                                       n_samples=n_source_samples, seed=seed)

            def always_transfer_factory(problem, rng):
                from repro.core.selective_transfer import SelectiveTransfer
                from repro.study.registry import build_optimizer
                optimizer = build_optimizer("kato_tl", problem, rng,
                                            quick=quick, source=source)
                optimizer.selector = SelectiveTransfer(
                    [1e6, 1e-3], names=["kat_gp", "neuk_gp"], rng=rng)
                return optimizer

            finals = []
            for run_seed in spec.spawn_seeds():
                study = Study(spec, seed=run_seed,
                              optimizer_factory=always_transfer_factory)
                finals.append(study.run().best_curve()[-1])
            results[mode] = {"mean_best_objective": float(np.mean(finals))}
            continue
        results[mode] = {
            "mean_best_objective": float(np.mean(outcome["curves"][:, -1]))}
    return results
