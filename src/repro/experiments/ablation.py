"""Ablations E9 and E10: design choices called out in DESIGN.md.

* :func:`run_mace_ablation` -- six-objective vs three-objective constrained
  MACE (the claim behind paper Eq. 13 is "same performance, lower cost").
* :func:`run_stl_ablation` -- selective transfer vs always-transfer vs
  never-transfer when the source is deliberately mismatched (the scenario
  motivating paper section 3.4).
"""

from __future__ import annotations

import time

import numpy as np

from repro.circuits import make_problem
from repro.core import KATO, KATOConfig, SourceModel
from repro.experiments.runner import build_constrained_optimizer, make_source_model
from repro.utils.random import spawn_rngs


def run_mace_ablation(circuit: str = "two_stage_opamp", technology: str = "180nm",
                      n_simulations: int = 60, n_init: int = 30, n_seeds: int = 2,
                      seed: int = 0, quick: bool = True) -> dict[str, dict[str, float]]:
    """Compare the full (six-objective) and modified (three-objective) ensembles.

    Returns per-variant mean final best objective and mean wall-clock time of
    the acquisition loop, the trade-off paper section 3.3 argues about.
    """
    results: dict[str, dict[str, float]] = {}
    for variant in ("mace", "mace_modified"):
        finals, times = [], []
        for rng in spawn_rngs(seed, n_seeds):
            problem = make_problem(circuit, technology)
            optimizer = build_constrained_optimizer(variant, problem, rng, quick=quick)
            start = time.perf_counter()
            history = optimizer.optimize(n_simulations=n_simulations, n_init=n_init)
            times.append(time.perf_counter() - start)
            finals.append(history.best_curve(constrained=True)[-1])
        results[variant] = {
            "mean_best_objective": float(np.mean(finals)),
            "mean_wall_time_s": float(np.mean(times)),
        }
    return results


def run_stl_ablation(target_circuit: str = "two_stage_opamp",
                     target_technology: str = "40nm",
                     mismatched_source_circuit: str = "bandgap",
                     n_source_samples: int = 60,
                     n_simulations: int = 48, n_init: int = 24, n_seeds: int = 2,
                     seed: int = 0, quick: bool = True) -> dict[str, dict[str, float]]:
    """STL vs always-transfer vs never-transfer with a mismatched source.

    The source is the bandgap (a very different circuit), the setting where
    blind transfer is expected to hurt and STL is expected to hold its own.
    """
    source = make_source_model(mismatched_source_circuit, "180nm",
                               n_samples=n_source_samples, seed=seed)
    config_kwargs = dict(batch_size=4, surrogate_train_iters=20, kat_train_iters=60,
                         pop_size=32, n_generations=10) if quick else {}

    def make_kato(problem, rng, mode: str) -> KATO:
        config = KATOConfig(**config_kwargs) if config_kwargs else KATOConfig()
        if mode == "never":
            return KATO(problem, source=None, config=config, rng=rng)
        optimizer = KATO(problem, source=source, config=config, rng=rng)
        if mode == "always":
            # Force all proposals to come from the KAT-GP model by giving the
            # target-only model a negligible initial weight.
            from repro.core.selective_transfer import SelectiveTransfer
            optimizer.selector = SelectiveTransfer([1e6, 1e-3],
                                                   names=["kat_gp", "neuk_gp"], rng=rng)
        return optimizer

    results: dict[str, dict[str, float]] = {}
    for mode in ("stl", "always", "never"):
        finals = []
        for rng in spawn_rngs(seed, n_seeds):
            problem = make_problem(target_circuit, target_technology)
            optimizer = make_kato(problem, rng, mode)
            history = optimizer.optimize(n_simulations=n_simulations, n_init=n_init)
            finals.append(history.best_curve(constrained=True)[-1])
        results[mode] = {"mean_best_objective": float(np.mean(finals))}
    return results
