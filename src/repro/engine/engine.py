"""The batched evaluation engine.

:class:`EvaluationEngine` owns everything between "the optimizer proposed a
batch of design vectors" and "here are their :class:`EvaluatedDesign`
records":

* **batching** -- the whole batch is dispatched through one
  :class:`~repro.engine.backends.ExecutionBackend` call, so independent
  simulations overlap on thread/process backends;
* **caching** -- a content-hash :class:`~repro.engine.cache.DesignCache`
  short-circuits bit-identical designs (including duplicates *within* one
  batch), with hit/miss statistics for reports;
* **failure isolation** -- a design whose simulation raises (e.g. a Newton
  solve diverging into a singular Jacobian) is converted to the problem's
  pessimised failed evaluation instead of killing the batch.

The engine is deliberately a thin coordinator: simulation stays a pure
function of the problem and the design vector (see
:func:`evaluate_design_task`), which is what makes process dispatch safe.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.bo.problem import EvaluatedDesign, OptimizationProblem
from repro.engine.backends import ExecutionBackend, resolve_backend
from repro.engine.cache import DesignCache
from repro.utils.validation import check_matrix


@dataclass
class _TaskFailure:
    """Marker returned by :func:`evaluate_design_task` when simulation raised."""

    kind: str
    message: str


#: Exception types (matched by class name, so worker results stay trivially
#: picklable) that indicate a broken problem implementation -- wrong metric
#: names, malformed shapes, bad node names, misconfigured spaces -- rather
#: than a design whose numerics blew up.  These are re-raised by the
#: coordinator: silently pessimising every design because of a typo would let
#: a whole optimization run complete "successfully" on garbage.  Numerical
#: failures (ConvergenceError, LinAlgError, overflow, ...) stay isolated.
_CONTRACT_ERRORS = ("KeyError", "TypeError", "AttributeError",
                    "NotImplementedError", "ShapeError", "NetlistError",
                    "DesignSpaceError", "NotFittedError", "OptimizationError")


def evaluate_design_task(task: tuple[OptimizationProblem, np.ndarray]):
    """Evaluate one ``(problem, x)`` pair, encoding exceptions in the result.

    This is the unit of work shipped to backend workers.  It is a top-level
    function (picklable for :class:`~repro.engine.backends.ProcessBackend`)
    and never raises: failures come back as :class:`_TaskFailure` so one
    diverging solve cannot poison the surrounding ``Executor.map``.  The
    coordinator decides which failures to isolate and which to re-raise.
    """
    problem, x = task
    try:
        return problem.evaluate(x)
    except Exception as exc:  # noqa: BLE001 - isolation is the whole point
        return _TaskFailure(type(exc).__name__, f"{type(exc).__name__}: {exc}")


class EvaluationEngine:
    """Batched, cached, failure-isolated evaluation of one problem.

    Parameters
    ----------
    problem:
        The sizing problem whose :meth:`~repro.bo.problem.OptimizationProblem.evaluate`
        defines the ground truth for one design.
    backend:
        Backend name (``"serial"``/``"thread"``/``"process"``), instance, or
        ``None`` for the environment default (serial unless
        ``REPRO_ENGINE_BACKEND`` says otherwise).
    cache:
        ``True`` (default) for a fresh :class:`DesignCache`, an existing
        cache to share one across engines, or ``False``/``None`` to disable.
    max_workers:
        Worker count for pooled backends created from a name.
    """

    def __init__(self, problem: OptimizationProblem,
                 backend: str | ExecutionBackend | None = None,
                 cache: DesignCache | bool | None = True,
                 max_workers: int | None = None):
        self.problem = problem
        self.backend = resolve_backend(backend, max_workers=max_workers)
        if cache is True:
            cache = DesignCache()
        elif cache is False:
            cache = None
        self.cache = cache
        self.n_evaluated = 0
        self.n_failures = 0

    # ------------------------------------------------------------------ #
    # evaluation                                                          #
    # ------------------------------------------------------------------ #
    def evaluate_batch(self, x) -> list[EvaluatedDesign]:
        """Evaluate the rows of ``x``, in order, through cache and backend.

        With the cache disabled every row is simulated independently (no
        within-batch deduplication either), which is what stochastic
        simulators and raw-throughput benchmarks want.
        """
        x = check_matrix(x, "x", n_cols=self.problem.design_space.dim)
        n = x.shape[0]
        with telemetry.span("engine.evaluate_batch", problem=self.problem.name,
                            batch=n):
            return self._evaluate_batch(x, n)

    def _evaluate_batch(self, x: np.ndarray, n: int) -> list[EvaluatedDesign]:
        results: list[EvaluatedDesign | None] = [None] * n

        if self.cache is None:
            keys = None
            pending = list(range(n))
        else:
            # Cache keys are computed on the *clipped* design, which is what
            # the simulator actually sees; returned records keep the raw x.
            # The problem's cache_token (not just its name) scopes the keys,
            # so a shared cache never mixes differently-configured problems.
            token = getattr(self.problem, "cache_token", self.problem.name)
            clipped = self.problem.design_space.clip(x)
            keys = [DesignCache.key_for(token, row) for row in clipped]
            pending = []
            queued: set[str] = set()
            for index, key in enumerate(keys):
                if key in queued:
                    # Duplicate within the batch: simulated once, the repeat
                    # counts as a hit (a simulation the cache layer saved).
                    self.cache.record_saved_duplicate()
                    continue
                hit = self.cache.get(key)
                if hit is not None:
                    results[index] = self._clone(hit, x[index])
                    queued.add(key)
                    continue
                queued.add(key)
                pending.append(index)

        if pending:
            outcomes = self._dispatch(x, pending)
            telemetry.inc("repro_designs_evaluated_total", len(pending))
            for index, outcome in zip(pending, outcomes):
                self.n_evaluated += 1
                if isinstance(outcome, _TaskFailure):
                    if outcome.kind in _CONTRACT_ERRORS:
                        raise RuntimeError(
                            f"evaluation of {self.problem.name} raised a "
                            f"contract error ({outcome.message}); this is a "
                            "problem-implementation bug, not a failed design, "
                            "so it is not isolated")
                    self.n_failures += 1
                    telemetry.inc("repro_design_failures_total")
                    # Loud but non-fatal: numerical blow-ups are real results
                    # ("this region is bad") but should not pass unnoticed.
                    warnings.warn(
                        f"simulation of one {self.problem.name} design failed "
                        f"({outcome.message}); recording pessimised metrics",
                        RuntimeWarning, stacklevel=2)
                    outcome = self.problem.failed_evaluation(
                        x[index], tag=f"error:{outcome.message}")
                elif keys is not None:
                    # Only clean evaluations are cached (failures may be
                    # transient, e.g. a killed worker) -- and cached as a
                    # private clone so callers mutating their returned
                    # records cannot pollute the cache.
                    self.cache.put(keys[index], self._clone(outcome, x[index]))
                results[index] = outcome

        if keys is not None:
            # Resolve within-batch duplicates to clones of their source row.
            source = {keys[i]: record for i, record in enumerate(results)
                      if record is not None}
            for index, key in enumerate(keys):
                if results[index] is None:
                    results[index] = self._clone(source[key], x[index])
        return results  # type: ignore[return-value]

    def _dispatch(self, x: np.ndarray, pending: list[int]) -> list:
        """Simulate the pending rows: vectorised when the backend allows it.

        On a :class:`~repro.engine.backends.BatchedBackend` (and a problem
        that opted in via ``supports_batch_simulation``) the whole pending
        set goes through one stacked-tensor simulation; otherwise each row is
        an independent :func:`evaluate_design_task` through ``backend.map``.
        Both paths return, per row, either an :class:`EvaluatedDesign` or a
        :class:`_TaskFailure` -- and the batched path is bit-identical to
        serial, so backend choice never changes recorded results.

        A backend advertising ``job_dispatch`` (the study service's
        :class:`~repro.service.queue.QueueBackend`) gets the whole pending
        block as one ``map_jobs`` call instead: it ships the rows to
        external workers as queue jobs and returns the same per-row
        ``EvaluatedDesign``-or-``_TaskFailure`` contract, so failure
        isolation and caching behave identically to in-process evaluation.
        """
        if getattr(self.backend, "job_dispatch", False):
            return self.backend.map_jobs(self.problem,
                                         [x[index] for index in pending])
        if (getattr(self.backend, "batched", False)
                and getattr(self.problem, "supports_batch_simulation", False)):
            from repro.circuits.base import simulate_checked_batch
            space = self.problem.design_space
            jobs = []
            for index in pending:
                row = x[index].reshape(1, -1)
                jobs.append((self.problem, space.as_dict(space.clip(row)[0])))
            outcomes = []
            for index, result in zip(pending, simulate_checked_batch(jobs)):
                if isinstance(result, tuple):
                    metrics, _ok = result
                    try:
                        outcomes.append(self.problem.evaluation_from_metrics(
                            x[index], metrics))
                    except Exception as exc:  # noqa: BLE001 - mirror task path
                        outcomes.append(_TaskFailure(
                            type(exc).__name__, f"{type(exc).__name__}: {exc}"))
                else:
                    outcomes.append(_TaskFailure(result.kind, result.message))
            return outcomes
        tasks = [(self.problem, x[index]) for index in pending]
        return self.backend.map(evaluate_design_task, tasks)

    @staticmethod
    def _clone(evaluation: EvaluatedDesign, x: np.ndarray) -> EvaluatedDesign:
        """Fresh record for a cache/dedup hit, carrying the requested x."""
        return EvaluatedDesign(x=np.asarray(x, dtype=float).ravel().copy(),
                               metrics=dict(evaluation.metrics),
                               objective=evaluation.objective,
                               feasible=evaluation.feasible,
                               violation=evaluation.violation,
                               tag=evaluation.tag,
                               extra=dict(evaluation.extra))

    # ------------------------------------------------------------------ #
    # bookkeeping                                                         #
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, object]:
        """Counters for reports: simulations run, failures, cache traffic."""
        stats: dict[str, object] = {
            "backend": self.backend.name,
            "n_evaluated": self.n_evaluated,
            "n_failures": self.n_failures,
        }
        if self.cache is not None:
            stats["cache"] = self.cache.stats.as_dict()
        return stats

    def close(self) -> None:
        """Shut down the backend's worker pool (idempotent)."""
        self.backend.shutdown()

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EvaluationEngine(problem={self.problem.name!r}, "
                f"backend={self.backend.name!r}, "
                f"cache={'on' if self.cache is not None else 'off'})")
