"""Pluggable execution backends for batched design evaluation.

A backend is an object with an ordered :meth:`ExecutionBackend.map`: it takes
a picklable callable and a list of work items and returns the results in
input order.  Four implementations cover the useful points of the
serial/concurrent design space:

* :class:`SerialBackend` -- a plain list comprehension; zero overhead, fully
  deterministic, the default everywhere.
* :class:`BatchedBackend` -- serial ``map`` semantics plus a capability flag
  (:attr:`ExecutionBackend.batched`) that consumers which know how to
  *vectorise* their work -- the evaluation engine, the Monte Carlo runner,
  the PVT corner sweep -- use to route a whole batch through one stacked
  simulation (see :func:`repro.spice.dc.dc_operating_point_batch`) instead
  of N independent solves.  Results are bit-identical to serial by
  construction of the batched solver.
* :class:`ThreadBackend` -- a shared :class:`~concurrent.futures.ThreadPoolExecutor`.
  The SPICE solves spend most of their time inside numpy/LAPACK calls that
  release the GIL, so threads already overlap the linear-algebra portion of
  independent simulations without any pickling cost.
* :class:`ProcessBackend` -- a :class:`~concurrent.futures.ProcessPoolExecutor`.
  Escapes the GIL entirely (the Newton stamping loops are pure Python and
  hold the GIL), at the price of pickling the problem and results per task.

Backends deliberately do **no** error handling: callables submitted to a
backend must catch their own exceptions and encode failures in their return
value (see :func:`repro.engine.engine.evaluate_design_task`), so one failed
work item can never poison the rest of a batch.
"""

from __future__ import annotations

import os
import threading
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted by :func:`default_backend`.
BACKEND_ENV_VAR = "REPRO_ENGINE_BACKEND"

#: Set in the environment of ProcessBackend workers so code running inside
#: them (e.g. a whole optimizer fanned out by ``run_repeated``) resolves its
#: *default* backend to serial instead of recursively spawning ncpu pools of
#: ncpu workers each.  Explicitly constructed backends are not affected.
WORKER_ENV_VAR = "REPRO_ENGINE_WORKER"


def _mark_worker_process() -> None:  # pragma: no cover - runs in pool workers
    os.environ[WORKER_ENV_VAR] = "1"


#: Thread-local analogue of WORKER_ENV_VAR for ThreadBackend workers: code
#: running on a pool thread that resolves a *default* backend gets serial,
#: because dispatching inner tasks onto the same (possibly saturated) pool
#: deadlocks -- every worker would block waiting for tasks that can never be
#: scheduled.
_THREAD_WORKER = threading.local()


def _in_worker_context() -> bool:
    return bool(os.environ.get(WORKER_ENV_VAR)) or getattr(_THREAD_WORKER,
                                                           "active", False)


class ExecutionBackend:
    """Strategy interface: run a function over work items, preserving order."""

    name = "base"

    #: Capability flag: consumers that know how to evaluate a whole batch in
    #: one vectorised call (stacked-tensor Newton across designs/samples)
    #: check this instead of the concrete type, so new batched backends work
    #: everywhere automatically.  Pure map-style backends leave it False.
    batched = False

    #: Capability flag for job-shaped dispatch: the evaluation engine hands
    #: a backend advertising this the whole pending design block via
    #: ``map_jobs(problem, rows)`` instead of per-row ``map`` tasks, so the
    #: backend can ship work to external processes as serialized jobs (see
    #: :class:`repro.service.queue.QueueBackend`).
    job_dispatch = False

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item and return results in input order."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release any worker pools (idempotent; serial backends are no-ops)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Evaluate items one after the other on the calling thread."""

    name = "serial"

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]


class BatchedBackend(SerialBackend):
    """Single-process backend that advertises vectorised batch evaluation.

    ``map`` is inherited serial behaviour -- it exists so consumers without a
    batched code path (e.g. study repetition fan-out) degrade gracefully.
    Batch-aware consumers check :attr:`batched` and hand the whole work list
    to the stacked simulation core instead, which solves every design of the
    batch inside one ``(B, N, N)`` Newton iteration.  The batched solvers are
    bit-identical to the serial ones, so switching a run to this backend
    never changes its results -- only its wall-clock time.
    """

    name = "batched"
    batched = True


class _PooledBackend(ExecutionBackend):
    """Shared plumbing for executor-based backends (lazy pool creation)."""

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers
        self._executor: Executor | None = None

    def _make_executor(self) -> Executor:
        raise NotImplementedError

    @property
    def executor(self) -> Executor:
        if self._executor is None:
            self._executor = self._make_executor()
        return self._executor

    def _worker_count(self) -> int:
        return self.max_workers or (os.cpu_count() or 1)

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        items = list(items)
        if not items:
            return []
        if len(items) == 1:
            # Avoid pool (and pickling) overhead for trivial batches.
            return [fn(items[0])]
        # Chunking amortises IPC and -- because pickle memoises within one
        # chunk message -- serialises a problem object shared by the chunk's
        # items once instead of once per item.  Threads ignore chunksize.
        chunksize = max(1, len(items) // (self._worker_count() * 4))
        return list(self.executor.map(fn, items, chunksize=chunksize))

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __getstate__(self) -> dict:
        # Executors are not picklable; workers receiving a backend (e.g. as
        # part of a problem object) get a fresh, lazily-created pool.
        state = self.__dict__.copy()
        state["_executor"] = None
        return state


class ThreadBackend(_PooledBackend):
    """Run work items on a thread pool.

    Best when the per-design work is dominated by numpy/LAPACK calls (which
    release the GIL) and the problem object is expensive to pickle.
    """

    name = "thread"

    def _worker_count(self) -> int:
        return self.max_workers or min(32, (os.cpu_count() or 1) + 4)

    def _make_executor(self) -> Executor:
        return ThreadPoolExecutor(max_workers=self._worker_count(),
                                  thread_name_prefix="repro-engine")

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        def marked(item: T) -> R:
            # Flag the executing thread for the duration of the task so any
            # default_backend() resolved inside it degrades to serial
            # instead of re-entering (and potentially deadlocking) this pool.
            # Saved/restored because the single-item shortcut runs on the
            # calling thread, which may itself already be a worker.
            previous = getattr(_THREAD_WORKER, "active", False)
            _THREAD_WORKER.active = True
            try:
                return fn(item)
            finally:
                _THREAD_WORKER.active = previous

        return super().map(marked, items)


class ProcessBackend(_PooledBackend):
    """Run work items on a process pool.

    Best for CPU-bound pure-Python work (the Newton stamping loop) on
    multi-core machines.  Work functions and items must be picklable:
    module-level functions and problem instances qualify, lambdas and
    closures do not.
    """

    name = "process"

    def _make_executor(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self._worker_count(),
                                   initializer=_mark_worker_process)


_BACKENDS: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    BatchedBackend.name: BatchedBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
}


def available_backends() -> list[str]:
    """Names accepted by :func:`resolve_backend`."""
    return sorted(_BACKENDS)


def resolve_backend(spec: str | ExecutionBackend | None,
                    max_workers: int | None = None) -> ExecutionBackend:
    """Normalise a backend specification to an :class:`ExecutionBackend`.

    ``None`` resolves through :func:`default_backend`; a string names one of
    :func:`available_backends`; an existing backend instance passes through
    unchanged (so pools can be shared between engines).
    """
    if spec is None:
        return default_backend(max_workers=max_workers)
    if isinstance(spec, ExecutionBackend):
        return spec
    key = str(spec).lower()
    if key not in _BACKENDS:
        raise ValueError(f"unknown backend {spec!r}; available: {available_backends()}")
    cls = _BACKENDS[key]
    if not issubclass(cls, _PooledBackend):
        return cls()
    return cls(max_workers=max_workers)


#: Process-wide singletons handed out by :func:`default_backend` so the many
#: lazily-created per-problem engines of a long experiment sweep share one
#: worker pool instead of each leaking their own.
_SHARED_DEFAULTS: dict[str, ExecutionBackend] = {}


def _is_shared_default(backend: ExecutionBackend) -> bool:
    """Whether ``backend`` is one of the process-wide default singletons."""
    return any(backend is shared for shared in _SHARED_DEFAULTS.values())


class BackendOwner:
    """Lazy, race-safe owner of one execution backend resolved from a spec.

    The shared lifecycle plumbing of every fan-out helper that holds a
    backend (PVT :class:`~repro.bench.CornerSweep`, the Monte Carlo
    :class:`~repro.mc.MonteCarloRunner`):

    * resolution is lazy and lock-guarded -- owners run inside engine thread
      fan-out, and without the lock two threads could each build a pooled
      backend and the loser's pool would leak;
    * :meth:`close` is idempotent and the owner is a context manager, so
      ``with`` blocks are a first-class release path next to
      ``OptimizationProblem.close()``;
    * a *leaked* pool fails loudly: if the owner is garbage-collected while
      a pooled backend it created still holds a live executor, a
      :class:`ResourceWarning` names the backend.  (The warning fires inside
      ``__del__``, where raising cannot abort the process -- under pytest,
      ``filterwarnings = error`` surfaces it through the unraisable-exception
      hook; plain scripts see it on stderr.)  Caller-provided backend
      instances and the process-wide shared defaults are not owned, so they
      never warn.
    * pickling drops the live backend -- pools cannot cross process
      boundaries -- and workers rebuild lazily (resolving the *default*
      spec to serial in worker context, so fan-outs compose without
      spawning pools of pools).
    """

    def __init__(self, spec: str | ExecutionBackend | None = None,
                 max_workers: int | None = None):
        self._backend_spec = spec
        self._max_workers = max_workers
        self._backend: ExecutionBackend | None = None
        self._backend_lock = threading.Lock()

    @property
    def backend(self) -> ExecutionBackend:
        if self._backend is None:
            with self._backend_lock:
                if self._backend is None:
                    self._backend = resolve_backend(
                        self._backend_spec, max_workers=self._max_workers)
        return self._backend

    def _owns_backend(self) -> bool:
        """Whether the held backend's lifecycle belongs to this owner.

        Caller-provided instances (the documented way to *share* one pool
        between consumers) and the process-wide shared defaults are merely
        borrowed: closing them out from under their other users would abort
        in-flight maps, so :meth:`close` only drops the reference.
        """
        return (self._backend is not None
                and not isinstance(self._backend_spec, ExecutionBackend)
                and not _is_shared_default(self._backend))

    def _owns_live_pool(self) -> bool:
        return (self._owns_backend()
                and isinstance(self._backend, _PooledBackend)
                and self._backend._executor is not None)

    def close(self) -> None:
        """Shut down the held backend's pool if owned, else release it
        (idempotent)."""
        if self._backend is not None:
            if self._owns_backend():
                self._backend.shutdown()
            self._backend = None

    def __enter__(self) -> "BackendOwner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # noqa: D105 - leak detector, not API
        try:
            leaked = self._owns_live_pool()
        except Exception:  # pragma: no cover - interpreter shutdown
            return
        if leaked:
            # Deliberately outside the guard: under warnings-as-errors this
            # raises out of __del__ and surfaces through the interpreter's
            # unraisable-exception hook (which pytest's plugin reports),
            # instead of being swallowed into a silent leak.
            warnings.warn(
                f"{type(self).__name__} was garbage-collected with a live "
                f"{self._backend.name!r} worker pool; call close() or use "
                "it as a context manager", ResourceWarning, stacklevel=2)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_backend"] = None
        state.pop("_backend_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._backend_lock = threading.Lock()


def default_backend(max_workers: int | None = None) -> ExecutionBackend:
    """The backend used when none is specified.

    Serial unless the ``REPRO_ENGINE_BACKEND`` environment variable names
    another backend, which lets deployments opt whole experiment scripts into
    parallel evaluation without touching call sites.  Inside a
    :class:`ProcessBackend` worker process or on a :class:`ThreadBackend`
    worker thread the default is always serial, so fanned-out optimizers
    cannot recursively spawn pools of pools (or deadlock a thread pool by
    re-entering it from its own workers).

    Pooled defaults are process-wide singletons: every problem whose engine
    was created implicitly shares one pool (shutting it down is safe -- the
    pool is lazily rebuilt on next use).  An explicit ``max_workers`` asks
    for a specific pool size, so it bypasses the singleton and returns a
    private backend; construct a backend explicitly for full control.
    """
    if _in_worker_context():
        return SerialBackend()
    name = str(os.environ.get(BACKEND_ENV_VAR, SerialBackend.name)).lower()
    if name == SerialBackend.name:
        return SerialBackend()
    if max_workers is not None:
        return resolve_backend(name, max_workers=max_workers)
    if name not in _SHARED_DEFAULTS:
        _SHARED_DEFAULTS[name] = resolve_backend(name)
    return _SHARED_DEFAULTS[name]
