"""Batched evaluation engine: backends, design cache and the coordinator.

The paper's whole cost model is "number of expensive simulations"; this
subsystem makes each batch of them as cheap as the hardware allows:

* :mod:`repro.engine.backends` -- pluggable execution strategies
  (:class:`SerialBackend`, :class:`ThreadBackend`, :class:`ProcessBackend`)
  behind one ordered ``map`` interface;
* :mod:`repro.engine.cache` -- an exact content-hash design cache with
  hit/miss statistics, so re-proposed designs cost nothing;
* :mod:`repro.engine.engine` -- :class:`EvaluationEngine`, which owns
  batching, caching and failure isolation and is what
  :meth:`repro.bo.problem.OptimizationProblem.evaluate_batch` routes through.

Every optimizer in the library picks this up transparently; experiments opt
into parallelism per call (``backend="process"``) or globally via the
``REPRO_ENGINE_BACKEND`` environment variable.
"""

from repro.engine.backends import (
    BACKEND_ENV_VAR,
    BatchedBackend,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    default_backend,
    resolve_backend,
)
from repro.engine.cache import CacheStats, DesignCache
from repro.engine.engine import EvaluationEngine, evaluate_design_task

__all__ = [
    "BACKEND_ENV_VAR",
    "BatchedBackend",
    "CacheStats",
    "DesignCache",
    "EvaluationEngine",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "available_backends",
    "default_backend",
    "evaluate_design_task",
    "resolve_backend",
]
