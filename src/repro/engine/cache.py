"""Design-level result cache keyed by content hash.

The paper's cost model counts *expensive simulations*; a design that has
already been simulated is free.  :class:`DesignCache` maps the exact bytes of
a (clipped) design vector -- plus the problem name, so two testbenches never
collide -- to its :class:`~repro.bo.problem.EvaluatedDesign`, with LRU
eviction and hit/miss statistics.

Hashing is exact (full float64 bytes, no rounding): only a bit-identical
design is a hit, which keeps cached replays byte-identical to fresh runs for
deterministic simulators.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.bo.problem import EvaluatedDesign


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`DesignCache`.

    ``hits`` counts every simulation the cache layer saved -- stored-entry
    lookups *and* within-batch duplicates the engine deduplicated.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "hit_rate": self.hit_rate}


@dataclass
class DesignCache:
    """LRU cache from design content hash to evaluated design.

    All entry and counter mutations happen under one lock, so a cache may be
    shared between engines whose coordinating threads run concurrently.
    (Thread-safety audit: every path that touches ``_entries`` or ``stats``
    -- :meth:`get`, :meth:`put`, :meth:`record_saved_duplicate`,
    :meth:`clear` -- acquires ``_lock`` first; ``stats`` reads outside the
    lock may observe a counter mid-update but never torn state, since the
    fields are plain ints.  ``tests/test_cache_hammer.py`` hammers a shared
    cache from many threads and checks counter conservation.)

    Parameters
    ----------
    maxsize:
        Maximum number of entries kept; ``None`` disables eviction.
    """

    maxsize: int | None = 100_000
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict[str, EvaluatedDesign] = field(default_factory=OrderedDict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False,
                                  compare=False)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]  # locks are not picklable; restored fresh
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @staticmethod
    def key_for(cache_token: str, x: np.ndarray) -> str:
        """Content hash of one design vector scoped by a problem identity.

        ``cache_token`` should be the problem's
        :attr:`~repro.bo.problem.OptimizationProblem.cache_token`, which
        distinguishes differently-configured instances sharing a name.
        """
        data = np.ascontiguousarray(np.asarray(x, dtype=float).ravel())
        digest = hashlib.sha1(data.tobytes())
        digest.update(cache_token.encode("utf-8"))
        return digest.hexdigest()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> EvaluatedDesign | None:
        """Look up one key, counting the hit/miss and refreshing LRU order."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
            else:
                self._entries.move_to_end(key)
                self.stats.hits += 1
        if entry is None:
            telemetry.inc("repro_cache_misses_total")
            return None
        telemetry.inc("repro_cache_hits_total")
        return entry

    def put(self, key: str, evaluation: EvaluatedDesign) -> None:
        evicted = 0
        with self._lock:
            self._entries[key] = evaluation
            self._entries.move_to_end(key)
            if self.maxsize is not None:
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
                    evicted += 1
        telemetry.inc("repro_cache_puts_total")
        if evicted:
            telemetry.inc("repro_cache_evictions_total", evicted)

    def record_saved_duplicate(self) -> None:
        """Count a within-batch duplicate served without simulation as a hit."""
        with self._lock:
            self.stats.hits += 1
        telemetry.inc("repro_cache_hits_total")

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
