"""Tests for acquisition functions and the MACE ensembles."""

import numpy as np
import pytest

from repro.acquisition import (
    ConstrainedMACEObjectives,
    ExpectedImprovement,
    LowerConfidenceBound,
    MACEObjectives,
    ModifiedConstrainedMACEObjectives,
    ProbabilityOfFeasibility,
    ProbabilityOfImprovement,
    UpperConfidenceBound,
    WeightedExpectedImprovement,
    expected_improvement,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.acquisition.functions import probability_of_feasibility
from repro.gp import GPRegression, MultiOutputGP


class _FakeModel:
    """Deterministic surrogate stub returning preset mean/variance."""

    def __init__(self, mean, variance):
        self.mean = np.asarray(mean, dtype=float)
        self.variance = np.asarray(variance, dtype=float)

    def predict(self, x):
        n = np.atleast_2d(x).shape[0]
        return (np.resize(self.mean, n), np.resize(self.variance, n))


class TestExpectedImprovement:
    def test_positive_when_mean_above_best(self):
        assert expected_improvement(1.0, 0.01, best=0.0) > 0.9

    def test_small_when_mean_far_below_best(self):
        assert expected_improvement(-5.0, 0.01, best=0.0) < 1e-6

    def test_zero_variance_limit(self):
        value = expected_improvement(2.0, 0.0, best=1.0)
        assert value == pytest.approx(1.0, abs=1e-3)

    def test_minimize_flag_flips(self):
        better_low = expected_improvement(-1.0, 0.1, best=0.0, minimize=True)
        worse_high = expected_improvement(1.0, 0.1, best=0.0, minimize=True)
        assert better_low > worse_high

    def test_increases_with_variance_below_best(self):
        low = expected_improvement(-1.0, 0.01, best=0.0)
        high = expected_improvement(-1.0, 4.0, best=0.0)
        assert high > low

    def test_nonnegative(self, rng):
        means = rng.normal(size=50)
        variances = rng.uniform(0.001, 2.0, size=50)
        assert np.all(expected_improvement(means, variances, best=0.3) >= 0)


class TestOtherAcquisitions:
    def test_pi_bounds(self, rng):
        values = probability_of_improvement(rng.normal(size=20),
                                            rng.uniform(0.01, 1, 20), best=0.0)
        assert np.all((values >= 0) & (values <= 1))

    def test_pi_monotone_in_mean(self):
        assert (probability_of_improvement(1.0, 0.5, best=0.0)
                > probability_of_improvement(-1.0, 0.5, best=0.0))

    def test_ucb_exceeds_mean(self):
        assert upper_confidence_bound(1.0, 1.0, beta=2.0) > 1.0

    def test_ucb_minimize_prefers_low_mean(self):
        low = upper_confidence_bound(-2.0, 0.1, beta=1.0, minimize=True)
        high = upper_confidence_bound(2.0, 0.1, beta=1.0, minimize=True)
        assert low > high

    def test_probability_of_feasibility_product(self):
        means = np.array([[10.0, 1.0]])
        variances = np.array([[0.01, 0.01]])
        # metric0 >= 5 satisfied with near-certainty; metric1 <= 0 nearly violated
        value = probability_of_feasibility(means, variances, [5.0, 0.0], ["ge", "le"])
        assert value[0] < 0.01

    def test_probability_of_feasibility_all_satisfied(self):
        value = probability_of_feasibility([[10.0, -5.0]], [[0.01, 0.01]],
                                           [5.0, 0.0], ["ge", "le"])
        assert value[0] > 0.99

    def test_probability_of_feasibility_unknown_sense(self):
        with pytest.raises(ValueError):
            probability_of_feasibility([[1.0]], [[1.0]], [0.0], ["gt"])


class TestBoundAcquisitionClasses:
    def test_ei_class_on_gp(self, rng):
        x = rng.uniform(size=(20, 2))
        y = -np.sum((x - 0.5) ** 2, axis=1)
        gp = GPRegression().fit(x, y, n_iters=20)
        acquisition = ExpectedImprovement(gp, best=float(y.max()))
        values = acquisition(rng.uniform(size=(10, 2)))
        assert values.shape == (10,)
        assert np.all(values >= 0)

    def test_pi_and_ucb_classes(self):
        model = _FakeModel([0.5, 2.0], [0.1, 0.1])
        pi = ProbabilityOfImprovement(model, best=1.0)(np.zeros((2, 1)))
        assert pi[1] > pi[0]
        ucb = UpperConfidenceBound(model, beta=1.0)(np.zeros((2, 1)))
        assert ucb[1] > ucb[0]

    def test_lcb_alias(self):
        model = _FakeModel([1.0], [1.0])
        assert LowerConfidenceBound(model, beta=2.0)(np.zeros((1, 1)))[0] == pytest.approx(
            -(1.0 - 2.0), abs=1e-9)

    def test_pof_class_validation(self):
        model = _FakeModel([[1.0]], [[1.0]])
        with pytest.raises(ValueError):
            ProbabilityOfFeasibility(model, thresholds=[1.0, 2.0], senses=["ge"])

    def test_weighted_ei(self, rng):
        x = rng.uniform(size=(15, 2))
        y = np.sum(x, axis=1)
        constraints = np.column_stack([x[:, 0] * 2.0])
        objective_gp = GPRegression().fit(x, y, n_iters=15)
        constraint_gp = MultiOutputGP().fit(x, constraints, n_iters=15)
        feasibility = ProbabilityOfFeasibility(constraint_gp, [0.5], ["ge"])
        weighted = WeightedExpectedImprovement(objective_gp, best=float(y.min()),
                                               feasibility=feasibility, minimize=True)
        values = weighted(rng.uniform(size=(8, 2)))
        assert values.shape == (8,)
        assert np.all(values >= 0)


class TestEnsembles:
    def _models(self, rng):
        x = rng.uniform(size=(25, 2))
        objective = np.sum(x, axis=1)
        constraints = np.column_stack([x[:, 0] * 3.0, x[:, 1] * 2.0])
        objective_gp = GPRegression().fit(x, objective, n_iters=15)
        constraint_gp = MultiOutputGP().fit(x, constraints, n_iters=15)
        return objective_gp, constraint_gp

    def test_mace_objectives_shape_and_direction(self, rng):
        objective_gp, _ = self._models(rng)
        ensemble = MACEObjectives(objective_gp, best=1.0, minimize=True)
        values = ensemble(rng.uniform(size=(12, 2)))
        assert values.shape == (12, 3)
        assert np.all(np.isfinite(values))

    def test_constrained_ensemble_six_objectives(self, rng):
        objective_gp, constraint_gp = self._models(rng)
        ensemble = ConstrainedMACEObjectives(objective_gp, constraint_gp, best=1.0,
                                             thresholds=[1.5, 1.0], senses=["ge", "le"],
                                             minimize=True)
        values = ensemble(rng.uniform(size=(9, 2)))
        assert values.shape == (9, 6)
        assert ensemble.n_objectives == 6

    def test_modified_ensemble_three_objectives(self, rng):
        objective_gp, constraint_gp = self._models(rng)
        ensemble = ModifiedConstrainedMACEObjectives(objective_gp, constraint_gp,
                                                     best=1.0, thresholds=[1.5, 1.0],
                                                     senses=["ge", "le"], minimize=True)
        values = ensemble(rng.uniform(size=(9, 2)))
        assert values.shape == (9, 3)
        assert ensemble.n_objectives == 3
        assert np.all(np.isfinite(values))

    def test_modified_ensemble_prefers_feasible_good_points(self, rng):
        objective_gp, constraint_gp = self._models(rng)
        ensemble = ModifiedConstrainedMACEObjectives(objective_gp, constraint_gp,
                                                     best=1.0, thresholds=[1.5, 1.9],
                                                     senses=["ge", "le"], minimize=True)
        # A point with high x0 (satisfies constraint 1) and low x1.
        good = ensemble(np.array([[0.9, 0.1]]))
        bad = ensemble(np.array([[0.05, 0.05]]))  # violates the >= constraint badly
        # Lower is better in minimisation convention for every ensemble column.
        assert good[0, 1] < bad[0, 1]
