"""Seeded-determinism regressions: fixed seeds mean bit-identical runs.

Reproducibility is a hard requirement for the paper experiments (statistics
over fixed seed sets) and for the design cache (bit-identical replays).
These tests pin it down for the two stochastic engines -- MACE's BO loop and
NSGA-II -- across repeated runs *and* across execution backends, since the
thread backend must preserve batch order and produce the same bits as
serial.
"""

from __future__ import annotations

import numpy as np

from repro.bo.design_space import DesignSpace, DesignVariable
from repro.bo.mace import MACE
from repro.bo.problem import OptimizationProblem
from repro.engine import EvaluationEngine
from repro.moo import NSGA2


class _QuadraticProblem(OptimizationProblem):
    """Cheap deterministic maximisation problem (defined here, not imported
    from the tests' conftest: `import conftest` is ambiguous when the full
    suite also collects benchmarks/conftest.py)."""

    def __init__(self, dim: int = 3):
        space = DesignSpace([DesignVariable(f"x{i}", 0.0, 1.0) for i in range(dim)])
        super().__init__(name="quadratic_det", design_space=space, objective="f",
                         minimize=False, constraints=[])

    def simulate(self, design):
        x = np.array([design[f"x{i}"] for i in range(self.design_space.dim)])
        return {"f": float(-np.sum((x - 0.6) ** 2))}


def _run_mace(seed: int, backend: str | None = None) -> tuple[np.ndarray, np.ndarray]:
    problem = _QuadraticProblem(dim=3)
    if backend is not None:
        problem.attach_engine(EvaluationEngine(problem, backend=backend))
    try:
        optimizer = MACE(problem, batch_size=2, rng=seed,
                         surrogate_train_iters=10, pop_size=16, n_generations=5)
        history = optimizer.optimize(n_simulations=12, n_init=6)
        return history.x.copy(), history.objectives.copy()
    finally:
        problem.engine.close()


class TestMACEDeterminism:
    def test_bit_identical_across_runs(self):
        x_first, y_first = _run_mace(seed=42)
        x_second, y_second = _run_mace(seed=42)
        np.testing.assert_array_equal(x_first, x_second)
        np.testing.assert_array_equal(y_first, y_second)

    def test_bit_identical_serial_vs_thread_backend(self):
        x_serial, y_serial = _run_mace(seed=7, backend="serial")
        x_thread, y_thread = _run_mace(seed=7, backend="thread")
        np.testing.assert_array_equal(x_serial, x_thread)
        np.testing.assert_array_equal(y_serial, y_thread)

    def test_different_seeds_diverge(self):
        x_first, _ = _run_mace(seed=1)
        x_second, _ = _run_mace(seed=2)
        assert not np.array_equal(x_first, x_second)


class TestNSGA2Determinism:
    @staticmethod
    def _objectives(x: np.ndarray) -> np.ndarray:
        # A simple bi-objective trade-off (ZDT1-like on 4 variables).
        f1 = x[:, 0]
        g = 1.0 + 9.0 * np.mean(x[:, 1:], axis=1)
        f2 = g * (1.0 - np.sqrt(np.clip(f1 / g, 0.0, None)))
        return np.column_stack([f1, f2])

    def _run(self, seed: int):
        optimizer = NSGA2(pop_size=16, n_generations=8, rng=seed)
        bounds = np.column_stack([np.zeros(4), np.ones(4)])
        return optimizer.minimize(self._objectives, bounds)

    def test_bit_identical_across_runs(self):
        first = self._run(seed=123)
        second = self._run(seed=123)
        np.testing.assert_array_equal(first.x, second.x)
        np.testing.assert_array_equal(first.objectives, second.objectives)
        np.testing.assert_array_equal(first.pareto_x, second.pareto_x)
        np.testing.assert_array_equal(first.pareto_objectives,
                                      second.pareto_objectives)

    def test_different_seeds_diverge(self):
        assert not np.array_equal(self._run(seed=1).x, self._run(seed=2).x)
