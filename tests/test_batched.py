"""Bit-equivalence suite for the batched-tensor simulation core.

The batched solvers exist purely for throughput: a result produced through
``dc_operating_point_batch`` / ``ac_analysis_batch`` / ``BatchSimulator`` /
the ``batched`` execution backend must be **bit-identical** to its serial
counterpart -- converged flags, iteration counts, raw voltage vectors,
metric dictionaries and session counters alike.  This suite enforces that
over every registry circuit on both technology nodes, for good and random
(often failing, rescue-ladder-exercising) designs, on the dense and the
sparse solver paths, and through each batched integration point: the
evaluation engine, the Monte Carlo runner and the PVT corner sweep.
"""

import warnings

import numpy as np
import pytest

from repro.bench import BatchJobError, BatchSimulator, Simulator
from repro.circuits import make_problem
from repro.circuits.base import simulate_checked_batch
from repro.engine import (
    BatchedBackend,
    EvaluationEngine,
    available_backends,
    resolve_backend,
)
from repro.errors import ConvergenceError
from repro.mc import MonteCarloConfig, MonteCarloRunner
from repro.mc.samplers import make_sampler
from repro.spice import (
    SPARSE_SIZE_THRESHOLD,
    BatchStamper,
    Circuit,
    CurrentSource,
    Resistor,
    SparseBatchStamper,
    SparseStamper,
    Stamper,
    VoltageSource,
    ac_analysis,
    ac_analysis_batch,
    dc_operating_point,
    dc_operating_point_batch,
)

GOOD_DESIGNS = {
    "two_stage_opamp": dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6,
                            l_load=0.5e-6, w_out=60e-6, l_out=0.3e-6,
                            c_comp=2e-12, r_zero=2e3, i_bias1=20e-6,
                            i_bias2=100e-6),
    "two_stage_opamp_settling": dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6,
                                     l_load=0.5e-6, w_out=60e-6, l_out=0.3e-6,
                                     c_comp=2e-12, r_zero=2e3, i_bias1=20e-6,
                                     i_bias2=100e-6),
    "three_stage_opamp": dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6,
                              l_load=0.5e-6, w_mid=30e-6, l_mid=0.35e-6,
                              w_out=80e-6, l_out=0.25e-6, c_m1=2e-12,
                              c_m2=0.5e-12, i_bias1=10e-6, i_bias23=80e-6),
    "bandgap": dict(r_ptat=100e3, r_out=600e3, w_mirror=10e-6, l_mirror=1e-6,
                    w_amp_in=5e-6, l_amp_in=0.5e-6, i_amp=1e-6,
                    area_ratio=8.0),
}

ALL_CIRCUITS = sorted(GOOD_DESIGNS)

#: AC-only benches, cheap enough for the wider random-design sweeps.
FAST_CIRCUITS = ["two_stage_opamp", "three_stage_opamp", "bandgap"]


def _designs(problem, name, n_random, seed=11):
    """The good design plus ``n_random`` space samples (some non-convergent)."""
    rng = np.random.default_rng(seed)
    rows = problem.design_space.sample(n_random, rng=rng)
    return [GOOD_DESIGNS[name]] + [problem.design_space.as_dict(row)
                                   for row in rows]


def _builder_batches(problem, designs):
    """Per-builder circuit batches (a batch must share one topology)."""
    return {key: [builder(design) for design in designs]
            for key, builder in problem.bench.builders.items()}


def assert_ops_identical(serial, batched):
    assert serial.converged == batched.converged
    assert serial.iterations == batched.iterations
    assert np.array_equal(serial.voltages, batched.voltages,
                          equal_nan=True)
    assert serial.node_voltages == batched.node_voltages
    assert serial.device_info == batched.device_info
    assert serial.temperature == batched.temperature


# ===================================================================== #
# batched DC vs serial DC                                               #
# ===================================================================== #
class TestBatchedDC:
    @pytest.mark.parametrize("name", ALL_CIRCUITS)
    @pytest.mark.parametrize("technology", ["180nm", "40nm"])
    def test_registry_circuits_bit_identical(self, name, technology):
        problem = make_problem(name, technology=technology)
        designs = _designs(problem, name, n_random=4)
        for key, circuits in _builder_batches(problem, designs).items():
            serial = [dc_operating_point(c) for c in circuits]
            # Fresh builds: a separate batch over its own circuits proves
            # independence from serial-solve side effects and build order.
            batched = dc_operating_point_batch(
                [problem.bench.builders[key](design) for design in designs])
            assert len(serial) == len(batched)
            for op_serial, op_batched in zip(serial, batched):
                assert_ops_identical(op_serial, op_batched)

    @pytest.mark.parametrize("name", FAST_CIRCUITS)
    def test_forced_sparse_bit_identical(self, name):
        problem = make_problem(name)
        designs = _designs(problem, name, n_random=3, seed=5)
        for key in problem.bench.builders:
            build = problem.bench.builders[key]
            serial = [dc_operating_point(build(design), solver="sparse")
                      for design in designs]
            batched = dc_operating_point_batch(
                [build(design) for design in designs], solver="sparse")
            for op_serial, op_batched in zip(serial, batched):
                assert_ops_identical(op_serial, op_batched)
            # And the sparse path agrees with the default dense one.
            dense = dc_operating_point_batch(
                [build(design) for design in designs])
            for op_sparse, op_dense in zip(batched, dense):
                assert op_sparse.converged == op_dense.converged
                assert np.allclose(op_sparse.voltages, op_dense.voltages,
                                   rtol=1e-9, atol=1e-9, equal_nan=True)

    def test_per_design_temperatures(self):
        problem = make_problem("two_stage_opamp")
        design = GOOD_DESIGNS["two_stage_opamp"]
        builder = problem.bench.builders["main"]
        temperatures = np.array([-40.0, 27.0, 125.0])
        serial = [dc_operating_point(builder(design), temperature=t)
                  for t in temperatures]
        batched = dc_operating_point_batch(
            [builder(design) for _ in temperatures], temperature=temperatures)
        for op_serial, op_batched in zip(serial, batched):
            assert_ops_identical(op_serial, op_batched)

    def test_topology_mismatch_rejected(self):
        problem = make_problem("two_stage_opamp")
        other = make_problem("bandgap")
        c1 = problem.bench.builders["main"](GOOD_DESIGNS["two_stage_opamp"])
        c2 = other.bench.builders["main"](GOOD_DESIGNS["bandgap"])
        from repro.errors import NetlistError
        with pytest.raises(NetlistError):
            dc_operating_point_batch([c1, c2])

    def test_auto_solver_picks_sparse_above_threshold(self):
        # A resistor ladder big enough to cross the sparse threshold: the
        # auto-selected sparse path must match a forced dense solve.
        def ladder(n_nodes):
            circuit = Circuit("ladder")
            circuit.add(VoltageSource("V1", "n0", "0", dc=1.0))
            for i in range(n_nodes):
                circuit.add(Resistor(f"R{i}", f"n{i}", f"n{i + 1}", 1e3))
            circuit.add(Resistor("RL", f"n{n_nodes}", "0", 1e3))
            return circuit

        n = SPARSE_SIZE_THRESHOLD + 10
        auto = dc_operating_point_batch([ladder(n), ladder(n)])
        dense = dc_operating_point_batch([ladder(n), ladder(n)],
                                         solver="dense")
        for op_auto, op_dense in zip(auto, dense):
            assert op_auto.converged and op_dense.converged
            assert np.allclose(op_auto.voltages, op_dense.voltages,
                               rtol=1e-9, atol=1e-12)


# ===================================================================== #
# batched AC vs serial AC                                               #
# ===================================================================== #
class TestBatchedAC:
    @pytest.mark.parametrize("name", FAST_CIRCUITS)
    @pytest.mark.parametrize("technology", ["180nm", "40nm"])
    def test_registry_circuits_bit_identical(self, name, technology):
        problem = make_problem(name, technology=technology)
        designs = _designs(problem, name, n_random=4)
        spec = next(s for s in problem.bench.analyses
                    if type(s).__name__ == "ACSpec")
        builder = problem.bench.builders[spec.circuit]
        circuits, ops = [], []
        for design in designs:
            circuit = builder(design)
            op = dc_operating_point(circuit)
            if op.converged:
                circuits.append(circuit)
                ops.append(op)
        assert circuits, "no converged design to run AC on"
        frequencies = problem.ac_frequencies
        serial = [ac_analysis(c, op, frequencies, observe=list(spec.observe))
                  for c, op in zip(circuits, ops)]
        batched = ac_analysis_batch(circuits, ops, frequencies,
                                    observe=list(spec.observe))
        for res_serial, res_batched in zip(serial, batched):
            assert np.array_equal(res_serial.frequencies,
                                  res_batched.frequencies)
            assert (set(res_serial.node_voltages)
                    == set(res_batched.node_voltages))
            for node in res_serial.node_voltages:
                assert np.array_equal(res_serial.node_voltages[node],
                                      res_batched.node_voltages[node]), (
                    name, node)


# ===================================================================== #
# BatchSimulator vs Simulator                                           #
# ===================================================================== #
class TestBatchSimulator:
    @pytest.mark.parametrize("name", ALL_CIRCUITS)
    def test_good_design_bit_identical(self, name):
        problem = make_problem(name)
        bench = problem.bench
        design = GOOD_DESIGNS[name]
        serial = Simulator().run(bench, design)
        batched = BatchSimulator().run([(problem.bench, design)])[0]
        assert serial.ok == batched.ok
        assert serial.failure == batched.failure
        assert serial.metrics == batched.metrics
        assert serial.stats == batched.stats

    @pytest.mark.parametrize("name", FAST_CIRCUITS)
    def test_random_designs_bit_identical(self, name):
        problem = make_problem(name)
        designs = _designs(problem, name, n_random=6, seed=23)
        serial = [Simulator().run(problem.bench, design)
                  for design in designs]
        batched = BatchSimulator().run([(problem.bench, design)
                                        for design in designs])
        for design, res_serial, res_batched in zip(designs, serial, batched):
            assert not isinstance(res_batched, BatchJobError)
            assert res_serial.ok == res_batched.ok
            assert res_serial.failure == res_batched.failure
            assert res_serial.metrics == res_batched.metrics
            assert res_serial.stats == res_batched.stats

    def test_mixed_benches_rejected(self):
        two_stage = make_problem("two_stage_opamp")
        bandgap = make_problem("bandgap")
        with pytest.raises(ValueError):
            BatchSimulator().run([
                (two_stage.bench, GOOD_DESIGNS["two_stage_opamp"]),
                (bandgap.bench, GOOD_DESIGNS["bandgap"]),
            ])

    def test_simulate_checked_batch_mixed_falls_back(self):
        # The problem-level entry point absorbs the structural mismatch and
        # produces per-job results identical to serial simulate_checked.
        two_stage = make_problem("two_stage_opamp")
        bandgap = make_problem("bandgap")
        jobs = [(two_stage, GOOD_DESIGNS["two_stage_opamp"]),
                (bandgap, GOOD_DESIGNS["bandgap"])]
        results = simulate_checked_batch(jobs)
        for (problem, design), result in zip(jobs, results):
            assert result == problem.simulate_checked(design)


# ===================================================================== #
# Monte Carlo: 64-sample batch, per-sample operating points, runner     #
# ===================================================================== #
class TestMonteCarloBatched:
    def test_64_varied_samples_bit_identical_ops(self):
        problem = make_problem("two_stage_opamp")
        design = GOOD_DESIGNS["two_stage_opamp"]
        sampler = make_sampler("normal", problem.mismatch_device_names(),
                               seed=9, n_max=64)
        samples = sampler.take(0, 64)
        varied = [problem.with_variation(sample) for sample in samples]
        circuits = [p.bench.builders["dc"](design) for p in varied]
        serial = [dc_operating_point(c) for c in circuits]
        batched = dc_operating_point_batch(
            [p.bench.builders["dc"](design) for p in varied])
        assert len(batched) == 64
        for op_serial, op_batched in zip(serial, batched):
            assert_ops_identical(op_serial, op_batched)

    def test_runner_backend_bit_identical(self):
        design = GOOD_DESIGNS["two_stage_opamp"]
        config = MonteCarloConfig(n_max=24, n_min=8, batch_size=12, seed=3,
                                  ci_half_width=None)
        serial = MonteCarloRunner(config, backend="serial").run(
            make_problem("two_stage_opamp"), design)
        batched = MonteCarloRunner(config, backend="batched").run(
            make_problem("two_stage_opamp"), design)
        assert serial.estimate == batched.estimate
        assert serial.stopped_by == batched.stopped_by
        assert serial.n_failures == batched.n_failures
        assert serial.per_sample == batched.per_sample
        assert serial.fingerprints == batched.fingerprints


# ===================================================================== #
# engine + corner integration                                           #
# ===================================================================== #
class TestEngineBatched:
    def test_backend_registered(self):
        assert "batched" in available_backends()
        backend = resolve_backend("batched")
        assert isinstance(backend, BatchedBackend)
        assert backend.batched is True
        assert resolve_backend("serial").batched is False
        # Degraded map semantics stay serial-ordered.
        assert backend.map(lambda v: v * 2, [1, 2, 3]) == [2, 4, 6]

    def test_evaluate_batch_bit_identical(self):
        rng = np.random.default_rng(77)
        x = make_problem("two_stage_opamp").design_space.sample(6, rng=rng)
        records = {}
        for backend in ("serial", "batched"):
            problem = make_problem("two_stage_opamp")
            engine = EvaluationEngine(problem, backend=backend, cache=False)
            with warnings.catch_warnings():
                # Random rows may include designs whose simulation raises;
                # both paths must pessimise them identically (and quietly,
                # as far as this test is concerned).
                warnings.simplefilter("ignore", RuntimeWarning)
                records[backend] = engine.evaluate_batch(x)
        for rec_serial, rec_batched in zip(records["serial"],
                                           records["batched"]):
            assert np.array_equal(rec_serial.x, rec_batched.x)
            assert rec_serial.metrics == rec_batched.metrics
            assert rec_serial.objective == rec_batched.objective
            assert rec_serial.feasible == rec_batched.feasible
            assert rec_serial.violation == rec_batched.violation
            assert rec_serial.tag == rec_batched.tag

    def test_corner_sweep_bit_identical(self):
        design = GOOD_DESIGNS["two_stage_opamp"]
        with make_problem("two_stage_opamp_corners") as serial_problem:
            serial = serial_problem.simulate(design)
        with make_problem("two_stage_opamp_corners",
                          backend="batched") as batched_problem:
            batched = batched_problem.simulate(design)
        assert serial == batched


# ===================================================================== #
# stamper units and Newton-driver regressions                           #
# ===================================================================== #
class TestStamperUnits:
    def test_add_gmin_touches_only_node_diagonal(self):
        stamper = Stamper(n_nodes=3, n_branches=2)
        stamper.add_gmin(1e-3)
        expected = np.zeros((5, 5))
        expected[0, 0] = expected[1, 1] = expected[2, 2] = 1e-3
        assert np.array_equal(stamper.matrix, expected)

    def test_stamper_buffer_reuse(self):
        problem = make_problem("two_stage_opamp")
        circuit = problem.bench.builders["main"](
            GOOD_DESIGNS["two_stage_opamp"])
        stamper = circuit.make_dc_stamper()
        voltages = np.zeros(circuit.n_nodes + circuit.n_branches)
        circuit.stamp_dc(voltages, 27.0, gmin=1e-3, stamper=stamper)
        first = stamper.matrix.copy(), stamper.rhs.copy()
        matrix_buffer, rhs_buffer = stamper.matrix, stamper.rhs
        # Restamping reuses the same buffers and reproduces the same values.
        circuit.stamp_dc(voltages, 27.0, gmin=1e-3, stamper=stamper)
        assert stamper.matrix is matrix_buffer
        assert stamper.rhs is rhs_buffer
        assert np.array_equal(stamper.matrix, first[0])
        assert np.array_equal(stamper.rhs, first[1])
        # A fresh one-shot stamp agrees with the reused-buffer stamp.
        one_shot = circuit.stamp_dc(voltages, 27.0, gmin=1e-3)
        assert np.array_equal(one_shot.matrix, first[0])
        assert np.array_equal(one_shot.rhs, first[1])

    def test_batch_stamper_accumulates_columns(self):
        stamper = BatchStamper(batch_size=3, n_nodes=2, n_branches=0)
        stamper.add_entry(0, 0, np.array([1.0, 2.0, 3.0]))
        stamper.add_entry(0, 0, 1.0)
        stamper.add_rhs(1, np.array([0.5, 0.25, 0.125]))
        assert np.array_equal(stamper.matrix[:, 0, 0],
                              np.array([2.0, 3.0, 4.0]))
        assert np.array_equal(stamper.rhs[:, 1],
                              np.array([0.5, 0.25, 0.125]))
        # Ground (negative) indices are ignored like in the serial stamper.
        stamper.add_entry(-1, 0, 9.0)
        stamper.add_rhs(-1, 9.0)
        assert np.array_equal(stamper.matrix[:, 0, 0],
                              np.array([2.0, 3.0, 4.0]))

    def test_sparse_batch_stamper_matches_dense(self):
        circuit = Circuit("divider")
        circuit.add(VoltageSource("V1", "in", "0", dc=2.0))
        circuit.add(Resistor("R1", "in", "out", 1e3))
        circuit.add(Resistor("R2", "out", "0", 1e3))
        circuit.add(CurrentSource("I1", "out", "0", dc=1e-4))
        serial = dc_operating_point(circuit, solver="dense")
        sparse_serial = dc_operating_point(circuit, solver="sparse")
        assert serial.converged and sparse_serial.converged
        np.testing.assert_allclose(serial.voltages, sparse_serial.voltages,
                                   rtol=1e-12, atol=1e-15)
        # Sparse-batch is bit-identical to sparse-serial.
        batched = dc_operating_point_batch([circuit], solver="sparse")[0]
        assert np.array_equal(sparse_serial.voltages, batched.voltages)

    def test_sparse_stamper_lstsq_on_singular(self):
        stamper = SparseStamper(n_nodes=2, n_branches=0)
        stamper.add_entry(0, 0, 1.0)
        stamper.add_rhs(0, 2.0)
        # Row/column 1 is empty: singular, solve must raise, lstsq must not.
        with pytest.raises(np.linalg.LinAlgError):
            stamper.solve()
        solution = stamper.solve_lstsq()
        assert np.isfinite(solution).all()
        assert solution[0] == pytest.approx(2.0)

    def test_newton_survives_failing_lstsq_fallback(self, monkeypatch):
        # Regression for the rescue path: when the direct solve *and* the
        # least-squares fallback both raise (lstsq's SVD can fail to
        # converge on pathological systems), the driver must report a
        # non-converged operating point instead of crashing the analysis.
        problem = make_problem("two_stage_opamp")
        circuit = problem.bench.builders["main"](
            GOOD_DESIGNS["two_stage_opamp"])

        def raise_linalg(self):
            raise np.linalg.LinAlgError("SVD did not converge")

        monkeypatch.setattr(Stamper, "solve", raise_linalg)
        monkeypatch.setattr(Stamper, "solve_lstsq", raise_linalg)
        op = dc_operating_point(circuit, rescue=False)
        assert not op.converged

    def test_non_finite_lstsq_solution_bails(self, monkeypatch):
        # The other half of the regression: a lstsq "solution" full of
        # non-finite values must end the Newton loop as non-converged, not
        # propagate NaNs into later iterations.
        problem = make_problem("two_stage_opamp")
        circuit = problem.bench.builders["main"](
            GOOD_DESIGNS["two_stage_opamp"])
        size = circuit.n_nodes + circuit.n_branches

        def raise_linalg(self):
            raise np.linalg.LinAlgError("singular")

        def nan_solution(self):
            return np.full(size, np.nan)

        monkeypatch.setattr(Stamper, "solve", raise_linalg)
        monkeypatch.setattr(Stamper, "solve_lstsq", nan_solution)
        op = dc_operating_point(circuit, rescue=False)
        assert not op.converged
        assert np.isfinite(op.voltages).all()


# ===================================================================== #
# enriched failure messages                                             #
# ===================================================================== #
class TestEnrichedFailureMessages:
    """ConvergenceError messages carry the final solver state.

    The enriched fragment (Newton iteration count, final residual norm,
    final gmin level) is rendered by ``SolveStats.failure_detail`` from
    values both solver paths compute through identical arithmetic, so the
    serial and batched messages must agree character for character.
    """

    #: A budget no opamp converges under: two Newton iterations on the
    #: tightest gmin rung, with the rescue ladder disabled.
    HARD = dict(max_iterations=2, gmin_steps=(1e-12,), rescue=False)

    @staticmethod
    def _circuit():
        problem = make_problem("two_stage_opamp")
        return problem.bench.builders["main"](
            GOOD_DESIGNS["two_stage_opamp"])

    def test_serial_message_carries_solver_state(self):
        with pytest.raises(ConvergenceError) as excinfo:
            dc_operating_point(self._circuit(), raise_on_failure=True,
                               **self.HARD)
        message = str(excinfo.value)
        assert "did not converge" in message
        for token in ("Newton iterations", "residual=", "gmin="):
            assert token in message
        # The fragment is exactly the stats' own rendering.
        op = dc_operating_point(self._circuit(), **self.HARD)
        assert not op.converged
        assert message.endswith(op.stats.failure_detail())

    def test_batched_message_matches_serial_fragment(self):
        serial = dc_operating_point(self._circuit(), **self.HARD)
        with pytest.raises(ConvergenceError) as excinfo:
            dc_operating_point_batch([self._circuit()],
                                     raise_on_failure=True, **self.HARD)
        message = str(excinfo.value)
        assert "first failure" in message
        assert serial.stats.failure_detail() in message

    def test_serial_and_batched_details_bit_identical(self):
        serial = dc_operating_point(self._circuit(), **self.HARD)
        batched = dc_operating_point_batch([self._circuit()], **self.HARD)[0]
        assert not serial.converged and not batched.converged
        assert batched.stats.failure_detail() == serial.stats.failure_detail()
        assert batched.stats.final_residual == serial.stats.final_residual
        assert batched.stats.final_gmin == serial.stats.final_gmin
        assert batched.stats.iterations == serial.stats.iterations
