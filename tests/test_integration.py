"""End-to-end integration tests: KATO on the real circuit testbenches."""

import numpy as np
import pytest

from repro.bo import ConstrainedMACE
from repro.circuits import FOMProblem, TwoStageOpAmp
from repro.core import KATO, KATOConfig, SourceModel


QUICK = KATOConfig(batch_size=4, surrogate_train_iters=12, kat_train_iters=40,
                   pop_size=24, n_generations=6)


@pytest.mark.slow
class TestEndToEnd:
    def test_kato_constrained_on_two_stage(self, two_stage_problem, two_stage_evaluations):
        kato = KATO(TwoStageOpAmp("180nm"), config=QUICK, rng=0)
        history = kato.optimize(n_simulations=len(two_stage_evaluations) + 12,
                                n_init=0, initial_evaluations=list(two_stage_evaluations))
        assert len(history) >= len(two_stage_evaluations) + 12
        # The run must track feasibility correctly end to end.
        best = history.best(constrained=True)
        assert best is not None
        if best.feasible:
            assert best.metrics["gain"] >= 60.0

    def test_kato_fom_on_two_stage(self):
        fom = FOMProblem(TwoStageOpAmp("180nm"), n_normalization_samples=20, rng=1)
        kato = KATO(fom, config=QUICK, rng=1)
        history = kato.optimize(n_simulations=26, n_init=10)
        curve = history.best_curve(constrained=False)
        assert curve[-1] >= curve[9]

    def test_transfer_between_nodes(self, two_stage_evaluations, two_stage_problem):
        # Build a source model from the cached 180 nm evaluations.
        x_unit = two_stage_problem.design_space.to_unit(
            np.array([e.x for e in two_stage_evaluations]))
        y = two_stage_problem.metrics_matrix(list(two_stage_evaluations))
        source = SourceModel(x_unit, y, metric_names=two_stage_problem.metric_names,
                             train_iters=15)
        target = TwoStageOpAmp("40nm")
        kato = KATO(target, source=source, config=QUICK, rng=2)
        history = kato.optimize(n_simulations=30, n_init=18)
        report = kato.transfer_report()
        assert report["transfer"] and len(report["weights"]) == 2
        assert len(history) >= 30

    def test_constrained_mace_baseline_on_circuit(self, two_stage_evaluations):
        problem = TwoStageOpAmp("180nm")
        optimizer = ConstrainedMACE(problem, batch_size=4, rng=3, variant="modified",
                                    surrogate_train_iters=10, pop_size=24,
                                    n_generations=5)
        history = optimizer.optimize(n_simulations=len(two_stage_evaluations) + 8,
                                     n_init=0,
                                     initial_evaluations=list(two_stage_evaluations))
        assert len(history) >= len(two_stage_evaluations) + 8
