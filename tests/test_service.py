"""Tests for the study service: store, checkpoints, queue, workers, HTTP API.

The service's core guarantee is that none of its machinery changes results:
a store-checkpointed study resumes bit-identically (including from a fresh
process), and a study distributed over any number of workers -- including
workers that die mid-job -- produces exactly the history of a serial run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

import service_plugin  # noqa: F401 - registers the service_quadratic problem
from repro.errors import OptimizationError
from repro.service.api import create_server, study_curve, study_pareto
from repro.service.driver import resume_service_study, run_service_study
from repro.service.queue import QueueBackend, WorkQueue
from repro.service.store import ResultsStore, StoreCheckpoint, derive_study_id
from repro.service.worker import Worker
from repro.study import Study, StudyCallback, StudySpec, read_checkpoint
from repro.study.cli import main as cli_main

_TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
_SRC_DIR = os.path.join(os.path.dirname(_TESTS_DIR), "src")

_MACE_OPTIONS = {"surrogate_train_iters": 8, "pop_size": 12,
                 "n_generations": 4}


def _spec(**overrides) -> StudySpec:
    base = dict(optimizer="mace", circuit="service_quadratic",
                n_simulations=14, n_init=6, batch_size=2, seed=5,
                optimizer_options=_MACE_OPTIONS)
    base.update(overrides)
    return StudySpec(**base)


def _subprocess_env(**extra) -> dict:
    env = dict(os.environ,
               PYTHONPATH=os.pathsep.join([_SRC_DIR, _TESTS_DIR]))
    env.pop("SVC_SIM_SLEEP", None)  # never inherit a stray slowdown
    env.update(extra)
    return env


class _KillAfter(StudyCallback):
    """Simulates a mid-run kill by raising after N batches."""

    def __init__(self, batches: int):
        self.batches = batches

    def on_batch(self, study, iteration, evaluations):
        if iteration >= self.batches:
            raise KeyboardInterrupt


@pytest.fixture(scope="module")
def reference_result():
    """The serial, uncheckpointed run every service variant must reproduce."""
    return Study(_spec()).run()


@pytest.fixture
def store(tmp_path):
    store = ResultsStore(tmp_path / "results.db")
    yield store
    store.close()


def _assert_history_identical(result, reference) -> None:
    np.testing.assert_array_equal(result.history.x, reference.history.x)
    np.testing.assert_array_equal(result.history.objectives,
                                  reference.history.objectives)


# ---------------------------------------------------------------------- #
# results store                                                           #
# ---------------------------------------------------------------------- #
class TestResultsStore:
    def test_store_checkpoint_matches_jsonl_records(self, tmp_path, store,
                                                    reference_result):
        spec = _spec()
        jsonl = tmp_path / "ref.jsonl"
        jsonl_result = Study(spec, checkpoint_path=str(jsonl)).run()
        _assert_history_identical(jsonl_result, reference_result)
        store_result = Study(spec,
                             checkpoint=StoreCheckpoint(store, "st")).run()
        _assert_history_identical(store_result, reference_result)
        # The store holds the same records the JSONL file does, verbatim.
        assert (store.read_checkpoint_data("st").raw_records
                == read_checkpoint(jsonl).raw_records)
        row = store.study_row("st")
        assert row["status"] == "finished"
        assert store.list_studies()[0]["n_evaluations"] == spec.n_simulations

    def test_batch_record_upsert_is_idempotent(self, store):
        spec_dict = _spec().to_dict()
        store.upsert_study("s", spec_dict, seed=5)
        record = {"kind": "batch", "index": 0, "phase": "init", "n_total": 2,
                  "evaluations": [
                      {"x": [0.1, 0.2, 0.3], "objective": 1.0,
                       "feasible": True, "violation": 0.0, "metrics": {},
                       "tag": None}]}
        store.write_batch_record("s", record)
        store.write_batch_record("s", record)
        assert len(store.batch_rows("s")) == 1
        assert len(store.evaluation_rows("s")) == 1
        assert store.batch_rows("s", since=0) == []

    def test_derive_study_id_content_addressed(self):
        spec = _spec()
        first = derive_study_id(spec.to_dict(), 5)
        assert first == derive_study_id(spec.to_dict(), 5)
        assert first.startswith("mace-service_quadratic-s5-")
        assert first != derive_study_id(spec.to_dict(), 6)
        assert first != derive_study_id(_spec(n_simulations=16).to_dict(), 5)

    def test_bench_ingest_dedupes(self, store):
        assert store.ingest_bench_record("BENCH_X", {"runtime": 1.5})
        assert not store.ingest_bench_record("BENCH_X", {"runtime": 1.5})
        assert store.ingest_bench_record("BENCH_X", {"runtime": 2.5})
        assert len(store.bench_rows("BENCH_X")) == 2
        assert store.bench_rows("BENCH_Y") == []


# ---------------------------------------------------------------------- #
# kill-and-resume through the store (the regression gate)                 #
# ---------------------------------------------------------------------- #
class TestStoreCheckpointResume:
    def test_kill_and_resume_is_bit_identical(self, store, reference_result):
        checkpoint = StoreCheckpoint(store, "killed")
        with pytest.raises(KeyboardInterrupt):
            Study(_spec(), callbacks=(_KillAfter(2),),
                  checkpoint=checkpoint).run()
        partial = store.read_checkpoint_data("killed")
        assert not partial.finished
        assert 0 < len(partial.evaluations) < _spec().n_simulations
        resumed = Study.resume(checkpoint).run()
        assert resumed.resumed
        assert resumed.n_replayed == len(partial.evaluations)
        _assert_history_identical(resumed, reference_result)
        assert store.study_row("killed")["status"] == "finished"

    def test_fresh_process_resume_is_bit_identical(self, store, tmp_path,
                                                   reference_result):
        study_id = "fresh"
        with pytest.raises(KeyboardInterrupt):
            Study(_spec(), callbacks=(_KillAfter(2),),
                  checkpoint=StoreCheckpoint(store, study_id)).run()
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "resume", study_id,
             "--db", str(store.path), "--import", "service_plugin",
             "--quiet", "-o", str(tmp_path / "out.jsonl")],
            env=_subprocess_env(), capture_output=True, text=True,
            timeout=180)
        assert completed.returncode == 0, completed.stderr
        data = store.read_checkpoint_data(study_id)
        assert data.finished
        resumed_x = np.array([e.x for e in data.evaluations])
        np.testing.assert_array_equal(resumed_x, reference_result.history.x)
        record = json.loads((tmp_path / "out.jsonl").read_text())
        assert record["resumed"] and record["n_replayed"] > 0

    def test_resubmitting_identical_spec_resumes(self, store,
                                                 reference_result):
        first = run_service_study(_spec(), store)
        second = run_service_study(_spec(), store)
        assert second["study_ids"] == first["study_ids"]
        result = second["results"][0]
        assert result.resumed
        assert result.n_replayed == _spec().n_simulations
        # The replay is free: every replayed design comes from the cache.
        assert result.engine_stats["cache"]["hits"] >= result.n_replayed
        _assert_history_identical(result, reference_result)

    def test_explicit_id_with_different_spec_is_refused(self, store):
        run_service_study(_spec(n_simulations=8), store, study_id="fixed")
        with pytest.raises(OptimizationError, match="different spec"):
            run_service_study(_spec(n_simulations=10), store,
                              study_id="fixed")

    def test_jsonl_import_roundtrip_resume(self, store, tmp_path,
                                           reference_result):
        jsonl = tmp_path / "partial.jsonl"
        with pytest.raises(KeyboardInterrupt):
            Study(_spec(), callbacks=(_KillAfter(2),),
                  checkpoint_path=str(jsonl)).run()
        study_id = store.import_jsonl(jsonl)
        assert study_id == derive_study_id(_spec().to_dict(), 5)
        assert (store.read_checkpoint_data(study_id).raw_records
                == read_checkpoint(jsonl).raw_records)
        resumed = resume_service_study(store, study_id)
        assert resumed.resumed
        _assert_history_identical(resumed, reference_result)


# ---------------------------------------------------------------------- #
# work queue                                                              #
# ---------------------------------------------------------------------- #
class TestWorkQueue:
    def test_claim_complete_lifecycle(self, store):
        queue = WorkQueue(store)
        job_id = queue.enqueue("s", 0, 0, {"kind": "evaluate", "x": [[0.5]]})
        assert queue.counts("s")["queued"] == 1
        job = queue.claim("w1", lease_seconds=30.0)
        assert job.job_id == job_id and job.attempts == 1
        assert queue.claim("w2", lease_seconds=30.0) is None  # held by w1
        assert queue.complete(job.job_id, "w1", [{"ok": True}])
        assert queue.counts("s") == {"queued": 0, "leased": 0, "done": 1,
                                     "failed": 0}

    def test_expired_lease_is_reclaimed(self, store):
        queue = WorkQueue(store)
        job_id = queue.enqueue("s", 0, 0, {"kind": "evaluate"})
        first = queue.claim("w1", lease_seconds=0.05)
        time.sleep(0.1)
        second = queue.claim("w2", lease_seconds=30.0)
        assert second is not None and second.job_id == job_id
        assert second.attempts == 2
        # The stale worker's completion is rejected; the new one's lands.
        assert not queue.complete(first.job_id, "w1", [{"ok": True}])
        assert queue.complete(second.job_id, "w2", [{"ok": True}])

    def test_exhausted_attempts_fail_permanently(self, store):
        queue = WorkQueue(store)
        queue.enqueue("s", 0, 0, {"kind": "evaluate"}, max_attempts=1)
        assert queue.claim("w1", lease_seconds=0.01) is not None
        time.sleep(0.05)
        assert queue.claim("w2") is None
        counts = queue.counts("s")
        assert counts["failed"] == 1 and counts["queued"] == 0
        assert "lease expired" in queue.job_rows("s")[0]["error"]

    def test_worker_failure_requeues_until_exhausted(self, store):
        queue = WorkQueue(store)
        queue.enqueue("s", 0, 0, {"kind": "evaluate"}, max_attempts=2)
        job = queue.claim("w1")
        queue.fail(job.job_id, "w1", "boom")
        assert queue.counts("s")["queued"] == 1
        job = queue.claim("w1")
        queue.fail(job.job_id, "w1", "boom again")
        assert queue.counts("s")["failed"] == 1

    def test_enqueue_is_idempotent_and_keeps_done_results(self, store):
        queue = WorkQueue(store)
        payload = {"kind": "evaluate", "x": [[0.5]]}
        job_id = queue.enqueue("s", 0, 0, payload)
        job = queue.claim("w1")
        queue.complete(job.job_id, "w1", [{"ok": True}])
        # Same payload: the done job (and its result) survives re-enqueue.
        assert queue.enqueue("s", 0, 0, payload) == job_id
        assert queue.counts("s")["done"] == 1
        # Different payload: the slot resets to queued.
        assert queue.enqueue("s", 0, 0, {"kind": "evaluate",
                                         "x": [[0.7]]}) == job_id
        counts = queue.counts("s")
        assert counts["done"] == 0 and counts["queued"] == 1


# ---------------------------------------------------------------------- #
# distributed execution                                                   #
# ---------------------------------------------------------------------- #
def _worker_threads(store_path, count, **worker_kwargs):
    workers = [Worker(store_path, worker_id=f"t{index}", **worker_kwargs)
               for index in range(count)]
    threads = [threading.Thread(target=worker.run, daemon=True)
               for worker in workers]
    for thread in threads:
        thread.start()
    return workers, threads


class TestDistributed:
    def test_two_workers_match_serial_run(self, store, reference_result):
        workers, threads = _worker_threads(store.path, 2)
        try:
            outcome = run_service_study(_spec(), store, distributed=True,
                                        dispatch_timeout=120.0)
        finally:
            for worker in workers:
                worker.request_stop()
            for thread in threads:
                thread.join(timeout=30.0)
            for worker in workers:
                worker.store.close()
        _assert_history_identical(outcome["results"][0], reference_result)
        study_id = outcome["study_ids"][0]
        counts = WorkQueue(store).counts(study_id)
        assert counts["failed"] == 0 and counts["queued"] == 0
        assert counts["done"] > 0
        # Both workers did some of the jobs (two idle workers polling a
        # steadily fed queue cannot starve one side entirely).
        owners = {row["lease_owner"] for row in WorkQueue(store).job_rows()}
        assert owners == {"t0", "t1"}
        assert store.study_row(study_id)["status"] == "finished"

    def test_dispatch_timeout_without_workers(self, store):
        with pytest.raises(OptimizationError, match="worker"):
            run_service_study(_spec(), store, distributed=True,
                              dispatch_timeout=0.3)
        assert store.study_row(derive_study_id(_spec().to_dict(),
                                               5))["status"] == "failed"

    def test_failed_job_surfaces_in_driver(self, store):
        backend = QueueBackend(store, "s", _spec().to_dict(),
                               max_attempts=1, dispatch_timeout=30.0)
        queue = WorkQueue(store)

        def poison():
            for _ in range(200):
                job = queue.claim("saboteur", lease_seconds=5.0)
                if job is not None:
                    queue.fail(job.job_id, "saboteur", "injected failure")
                    return
                time.sleep(0.02)

        thread = threading.Thread(target=poison, daemon=True)
        thread.start()
        problem = service_plugin.ServiceQuadratic()
        try:
            with pytest.raises(OptimizationError, match="injected failure"):
                backend.map_jobs(problem, [np.array([0.5, 0.5, 0.5])])
        finally:
            thread.join(timeout=10.0)
            problem.close()

    def test_sigkilled_worker_batch_is_releaded(self, store, tmp_path,
                                                reference_result):
        """A SIGKILLed worker's job is re-leased; the study still matches."""
        spec = _spec()
        outcome_box: dict = {}

        def drive():
            try:
                outcome_box["outcome"] = run_service_study(
                    spec, ResultsStore(store.path), distributed=True,
                    lease_seconds=1.0, dispatch_timeout=180.0)
            except BaseException as exc:  # pragma: no cover - surfaced below
                outcome_box["error"] = exc

        driver = threading.Thread(target=drive, daemon=True)
        driver.start()

        # A deliberately slow subprocess worker claims the first job...
        slow = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--db",
             str(store.path), "--import", "service_plugin",
             "--worker-id", "doomed", "--lease", "1.0"],
            env=_subprocess_env(SVC_SIM_SLEEP="60"),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            queue = WorkQueue(store)
            deadline = time.time() + 120.0
            while time.time() < deadline:
                leased = [row for row in queue.job_rows()
                          if row["lease_owner"] == "doomed"
                          and row["status"] == "leased"]
                if leased:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("slow worker never claimed a job")
            # ... and is killed mid-simulation, stranding the lease.
            slow.kill()
            slow.wait(timeout=30)
        finally:
            if slow.poll() is None:  # pragma: no cover - cleanup path
                slow.kill()

        # A healthy worker picks up the expired lease and finishes the study.
        workers, threads = _worker_threads(store.path, 1, lease_seconds=5.0)
        try:
            driver.join(timeout=180.0)
            assert not driver.is_alive(), "driver did not finish"
        finally:
            for worker in workers:
                worker.request_stop()
            for thread in threads:
                thread.join(timeout=30.0)
            for worker in workers:
                worker.store.close()
        if "error" in outcome_box:
            raise outcome_box["error"]
        result = outcome_box["outcome"]["results"][0]
        _assert_history_identical(result, reference_result)
        rows = WorkQueue(store).job_rows()
        releaded = [row for row in rows if row["attempts"] > 1]
        assert releaded, "the stranded job was never re-leased"
        assert all(row["status"] == "done" for row in rows)
        # No duplicates or gaps: one result row per design the driver asked
        # for, and the history length matches the budget exactly.
        assert len(result.history) == spec.n_simulations


# ---------------------------------------------------------------------- #
# HTTP API                                                                #
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def api_server(tmp_path_factory):
    store = ResultsStore(tmp_path_factory.mktemp("api") / "api.db")
    outcome = run_service_study(_spec(), store)
    store.ingest_bench_record("BENCH_DEMO", {"runtime": 1.25})
    store.register_worker("w1", hostname="h", pid=1)
    server = create_server(store, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield store, outcome["study_ids"][0], server.server_address[1]
    server.shutdown()
    server.server_close()
    store.close()


def _get(port: int, path: str):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as response:
        return json.loads(response.read())


class TestApi:
    def test_health_studies_and_detail(self, api_server):
        store, study_id, port = api_server
        assert _get(port, "/healthz")["status"] == "ok"
        studies = _get(port, "/api/studies")
        assert [s["study_id"] for s in studies] == [study_id]
        assert studies[0]["n_evaluations"] == _spec().n_simulations
        detail = _get(port, f"/api/studies/{study_id}")
        assert detail["status"] == "finished"
        assert detail["spec"]["optimizer"] == "mace"
        assert detail["best"]["objective"] <= studies[0]["best"]["objective"]

    def test_batches_history_and_curve(self, api_server):
        store, study_id, port = api_server
        batches = _get(port, f"/api/studies/{study_id}/batches")
        assert batches[0]["phase"] == "init"
        assert sum(b["n_evaluations"] for b in batches) == 14
        assert _get(port, f"/api/studies/{study_id}/batches?since=1") \
            == batches[2:]
        history = _get(port, f"/api/studies/{study_id}/history")
        assert len(history) == 14 and len(history[0]["x"]) == 3
        assert _get(port, f"/api/studies/{study_id}/history?limit=3") \
            == history[-3:]
        curve = _get(port, f"/api/studies/{study_id}/curve")["curve"]
        finite = [value for value in curve if value is not None]
        assert finite == sorted(finite, reverse=True)  # monotone best-so-far

    def test_pareto_front_is_nondominated(self, api_server):
        store, study_id, port = api_server
        front = _get(port, f"/api/studies/{study_id}/pareto"
                           "?metrics=objective,violation")["front"]
        assert front
        points = [(p["values"]["objective"], p["values"]["violation"])
                  for p in front]
        for a in points:
            assert not any(b[0] <= a[0] and b[1] <= a[1] and b != a
                           for b in points)

    def test_workers_jobs_and_bench(self, api_server):
        store, study_id, port = api_server
        workers = _get(port, "/api/workers")
        assert workers[0]["worker_id"] == "w1"
        assert "alive" in workers[0]
        assert _get(port, "/api/jobs")["counts"]["failed"] == 0
        bench = _get(port, "/api/bench?name=BENCH_DEMO")
        assert bench[0]["record"] == {"runtime": 1.25}
        assert any(entry["name"] == "mace"
                   for entry in _get(port, "/api/optimizers"))
        assert any(entry["name"] == "service_quadratic"
                   for entry in _get(port, "/api/problems"))

    def test_error_statuses(self, api_server):
        store, study_id, port = api_server
        for path, status in [("/api/studies/nope", 404),
                             ("/api/unknown", 404),
                             (f"/api/studies/{study_id}/pareto"
                              "?metrics=a,b&senses=min", 400)]:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(port, path)
            assert excinfo.value.code == status
            assert "error" in json.loads(excinfo.value.read())

    def test_dashboard_html(self, api_server):
        store, study_id, port = api_server
        with urllib.request.urlopen(f"http://127.0.0.1:{port}/") as response:
            body = response.read().decode()
            assert response.headers["Content-Type"].startswith("text/html")
        assert "repro study service" in body

    def test_query_helpers_validate(self, store):
        outcome = run_service_study(_spec(n_simulations=8), store)
        study_id = outcome["study_ids"][0]
        from repro.service.api import ApiError
        with pytest.raises(ApiError) as excinfo:
            study_pareto(store, study_id, metrics=["no_such_metric"])
        assert excinfo.value.status == 400
        with pytest.raises(ApiError):
            study_curve(store, "missing-study")
        maximised = study_curve(store, study_id, sense="max")["curve"]
        finite = [value for value in maximised if value is not None]
        assert finite == sorted(finite)


# ---------------------------------------------------------------------- #
# CLI                                                                     #
# ---------------------------------------------------------------------- #
class TestCliService:
    def test_list_json_outputs(self, capsys):
        assert cli_main(["list-optimizers", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert {"name", "aliases", "constrained"} <= set(entries[0])
        assert cli_main(["list-problems", "service_quadratic", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert len(entries) == 1
        assert entries[0]["name"] == "service_quadratic"
        assert entries[0]["n_design_variables"] == 3

    def test_unknown_names_exit_3(self, capsys):
        assert cli_main(["list-optimizers", "definitely-not-real"]) == 3
        assert "unknown optimizer" in capsys.readouterr().err
        assert cli_main(["list-problems", "definitely-not-real"]) == 3
        assert "unknown problem" in capsys.readouterr().err
        assert cli_main(["list-optimizers", "bo"]) == 0  # aliases resolve
        assert "gp_ei" in capsys.readouterr().out

    def test_run_with_db_and_spawned_workers(self, tmp_path, capsys,
                                             reference_result):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(_spec().to_dict()))
        db = tmp_path / "cli.db"
        code = cli_main(["run", str(spec_path), "--db", str(db),
                         "--spawn-workers", "2", "--quiet",
                         "-o", str(tmp_path / "out.jsonl")])
        assert code == 0
        record = json.loads((tmp_path / "out.jsonl").read_text())
        assert record["n_simulations"] == 14
        with ResultsStore(db) as store:
            study_id = store.list_studies()[0]["study_id"]
            data = store.read_checkpoint_data(study_id)
            assert data.finished
            np.testing.assert_array_equal(
                np.array([e.x for e in data.evaluations]),
                reference_result.history.x)

    def test_db_import_and_ingest_bench(self, tmp_path, capsys):
        jsonl = tmp_path / "study.jsonl"
        Study(_spec(n_simulations=8), checkpoint_path=str(jsonl)).run()
        db = tmp_path / "tools.db"
        assert cli_main(["db", "import", str(jsonl), "--db", str(db),
                         "--study-id", "imported"]) == 0
        assert "imported" in capsys.readouterr().out
        bench = tmp_path / "BENCH_SMOKE.json"
        bench.write_text(json.dumps(
            {"name": "BENCH_SMOKE", "records": [{"runtime": 0.5},
                                                {"runtime": 0.7}]}))
        assert cli_main(["db", "ingest-bench", str(bench),
                         "--db", str(db)]) == 0
        assert "2 new of 2" in capsys.readouterr().out
        # Re-ingestion is a no-op (records dedupe on content).
        assert cli_main(["db", "ingest-bench", str(bench),
                         "--db", str(db)]) == 0
        assert "0 new of 2" in capsys.readouterr().out
        with ResultsStore(db) as store:
            assert store.study_exists("imported")
            assert len(store.bench_rows("BENCH_SMOKE")) == 2

    def test_service_flags_require_db(self, capsys):
        assert cli_main(["run", "nonexistent.json", "--distributed"]) == 2
        assert "--db" in capsys.readouterr().err

    def test_worker_idle_timeout_exits_cleanly(self, tmp_path, capsys):
        db = tmp_path / "idle.db"
        ResultsStore(db).close()
        assert cli_main(["worker", "--db", str(db),
                         "--idle-timeout", "0.2"]) == 0
        assert "0 jobs" in capsys.readouterr().err
