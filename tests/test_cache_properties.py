"""Property-based tests for the design cache.

Hand-rolled property testing (no external dependency): seeded random
operation sequences are replayed against both the real :class:`DesignCache`
and a transparent shadow model, and the invariants that every sequence must
preserve are checked after each operation:

* the entry count never exceeds ``maxsize``;
* the hit/miss/eviction counters always reconcile with the operation
  counts (``lookups == gets + recorded duplicates``, evictions equal the
  overflow count);
* LRU semantics match the shadow model exactly;
* differing ``cache_token``s never produce colliding keys.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest

from repro.bo.problem import EvaluatedDesign
from repro.engine import DesignCache


def _record(value: float) -> EvaluatedDesign:
    return EvaluatedDesign(x=np.array([value]), metrics={"f": value},
                           objective=value, feasible=True)


class _ShadowCache:
    """Reference LRU model: an OrderedDict plus naive counters."""

    def __init__(self, maxsize: int | None):
        self.maxsize = maxsize
        self.entries: OrderedDict[str, float] = OrderedDict()
        self.hits = self.misses = self.evictions = 0

    def get(self, key: str):
        if key not in self.entries:
            self.misses += 1
            return None
        self.entries.move_to_end(key)
        self.hits += 1
        return self.entries[key]

    def put(self, key: str, value: float) -> None:
        self.entries[key] = value
        self.entries.move_to_end(key)
        if self.maxsize is not None:
            while len(self.entries) > self.maxsize:
                self.entries.popitem(last=False)
                self.evictions += 1


class TestCacheProperties:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("maxsize", [1, 3, 8, 64, None])
    def test_random_sequences_preserve_invariants(self, seed, maxsize):
        rng = np.random.default_rng(seed)
        cache = DesignCache(maxsize=maxsize)
        shadow = _ShadowCache(maxsize)
        key_pool = [DesignCache.key_for("prop", np.array([float(i)]))
                    for i in range(20)]
        n_gets = n_duplicates = 0

        for step in range(400):
            operation = rng.integers(0, 3)
            key = key_pool[int(rng.integers(0, len(key_pool)))]
            if operation == 0:
                value = float(step)
                cache.put(key, _record(value))
                shadow.put(key, value)
            elif operation == 1:
                n_gets += 1
                entry = cache.get(key)
                expected = shadow.get(key)
                if expected is None:
                    assert entry is None
                else:
                    assert entry is not None and entry.objective == expected
            else:
                n_duplicates += 1
                cache.record_saved_duplicate()
                shadow.hits += 1

            # Invariants, checked after *every* operation.
            if maxsize is not None:
                assert len(cache) <= maxsize
            assert len(cache) == len(shadow.entries)
            assert list(cache._entries) == list(shadow.entries)  # LRU order
            assert cache.stats.hits == shadow.hits
            assert cache.stats.misses == shadow.misses
            assert cache.stats.evictions == shadow.evictions
            assert cache.stats.lookups == n_gets + n_duplicates

        if cache.stats.lookups:
            assert cache.stats.hit_rate == pytest.approx(
                cache.stats.hits / cache.stats.lookups)

    @pytest.mark.parametrize("seed", range(4))
    def test_distinct_tokens_never_collide(self, seed):
        rng = np.random.default_rng(1000 + seed)
        tokens = [f"problem_{i}:{rng.integers(0, 1 << 30):08x}" for i in range(25)]
        vectors = [rng.normal(size=rng.integers(1, 6)) for _ in range(25)]
        seen: dict[str, tuple[str, bytes]] = {}
        for token in tokens:
            for vector in vectors:
                key = DesignCache.key_for(token, vector)
                identity = (token, np.ascontiguousarray(vector).tobytes())
                if key in seen:
                    assert seen[key] == identity, (
                        f"cache key collision between {seen[key]} and {identity}")
                seen[key] = identity
        assert len(seen) == len(tokens) * len(vectors)

    def test_key_is_content_addressed(self):
        x = np.array([1.0, 2.0, 3.0])
        assert DesignCache.key_for("p", x) == DesignCache.key_for("p", x.copy())
        # Same bytes through a different layout still hashes identically.
        strided = np.array([1.0, 0.0, 2.0, 0.0, 3.0, 0.0])[::2]
        assert DesignCache.key_for("p", x) == DesignCache.key_for("p", strided)
        assert DesignCache.key_for("p", x) != DesignCache.key_for("q", x)
        assert DesignCache.key_for("p", x) != DesignCache.key_for("p", x[:2])

    def test_unbounded_cache_never_evicts(self):
        cache = DesignCache(maxsize=None)
        for i in range(500):
            cache.put(DesignCache.key_for("p", np.array([float(i)])), _record(i))
        assert len(cache) == 500
        assert cache.stats.evictions == 0

    def test_clear_empties_but_keeps_stats(self):
        cache = DesignCache(maxsize=4)
        key = DesignCache.key_for("p", np.array([1.0]))
        cache.put(key, _record(1.0))
        assert cache.get(key) is not None
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1
        assert cache.get(key) is None
        assert cache.stats.misses == 1
