"""Tests for the decision-tree and random-forest surrogates."""

import numpy as np
import pytest

from repro.errors import NotFittedError
from repro.surrogates import DecisionTreeRegressor, RandomForestRegressor


def _step_data(rng, n=120):
    x = rng.uniform(size=(n, 2))
    y = np.where(x[:, 0] > 0.5, 2.0, -1.0) + 0.05 * rng.normal(size=n)
    return x, y


class TestDecisionTree:
    def test_learns_step_function(self, rng):
        x, y = _step_data(rng)
        tree = DecisionTreeRegressor(max_depth=4, rng=rng).fit(x, y)
        predictions = tree.predict(x)
        assert np.mean((predictions - y) ** 2) < 0.1

    def test_depth_zero_is_constant(self, rng):
        x, y = _step_data(rng)
        tree = DecisionTreeRegressor(max_depth=0, rng=rng).fit(x, y)
        assert np.allclose(tree.predict(x), y.mean())

    def test_constant_target(self, rng):
        x = rng.uniform(size=(20, 2))
        tree = DecisionTreeRegressor(rng=rng).fit(x, np.ones(20))
        assert np.allclose(tree.predict(x), 1.0)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(rng.normal(size=(5, 2)), rng.normal(size=3))

    def test_max_features_subsampling(self, rng):
        x, y = _step_data(rng)
        tree = DecisionTreeRegressor(max_features=1, rng=rng).fit(x, y)
        assert np.all(np.isfinite(tree.predict(x)))


class TestRandomForest:
    def test_regression_quality(self, rng):
        x, y = _step_data(rng, n=200)
        forest = RandomForestRegressor(n_trees=20, rng=rng).fit(x, y)
        mean, _ = forest.predict(x)
        assert np.mean((mean - y) ** 2) < 0.2

    def test_variance_positive_and_higher_off_data(self, rng):
        x, y = _step_data(rng)
        forest = RandomForestRegressor(n_trees=20, rng=rng).fit(x, y)
        _, variance = forest.predict(x)
        assert np.all(variance > 0)
        # Near the decision boundary the trees disagree more.
        _, boundary_var = forest.predict(np.array([[0.5, 0.5]]))
        _, interior_var = forest.predict(np.array([[0.95, 0.5]]))
        assert boundary_var[0] >= interior_var[0] * 0.5

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            RandomForestRegressor().predict(np.zeros((1, 2)))

    def test_n_trees_validation(self):
        with pytest.raises(ValueError):
            RandomForestRegressor(n_trees=0)

    def test_max_features_modes(self, rng):
        x, y = _step_data(rng, n=60)
        for mode in (None, "sqrt", "third", 1):
            forest = RandomForestRegressor(n_trees=4, max_features=mode, rng=rng)
            forest.fit(x, y)
            mean, _ = forest.predict(x[:5])
            assert mean.shape == (5,)

    def test_deterministic_with_seed(self):
        rng_data = np.random.default_rng(0)
        x, y = _step_data(rng_data)
        first = RandomForestRegressor(n_trees=5, rng=1).fit(x, y).predict(x[:10])[0]
        second = RandomForestRegressor(n_trees=5, rng=1).fit(x, y).predict(x[:10])[0]
        assert np.allclose(first, second)
