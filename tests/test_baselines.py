"""Tests for the baseline optimizers and the human-expert designs."""

import numpy as np
import pytest

from repro.baselines import MESMOC, TLMBO, USeMOC, evaluate_expert, expert_design, expert_designs
from repro.baselines.tlmbo import gaussian_copula_transform
from repro.errors import OptimizationError


class TestMESMOC:
    def test_runs_and_records(self, constrained_problem):
        optimizer = MESMOC(constrained_problem, batch_size=3, rng=0,
                           n_candidates=128, surrogate_train_iters=10)
        history = optimizer.optimize(n_simulations=21, n_init=12)
        assert len(history) >= 21
        assert history.best(constrained=True) is not None

    def test_rejects_unconstrained(self, quadratic_problem):
        with pytest.raises(OptimizationError):
            MESMOC(quadratic_problem)


class TestUSeMOC:
    def test_runs_and_records(self, constrained_problem):
        optimizer = USeMOC(constrained_problem, batch_size=3, rng=0,
                           surrogate_train_iters=10, pop_size=16, n_generations=5)
        history = optimizer.optimize(n_simulations=21, n_init=12)
        assert len(history) >= 21

    def test_rejects_unconstrained(self, quadratic_problem):
        with pytest.raises(OptimizationError):
            USeMOC(quadratic_problem)


class TestTLMBO:
    def test_copula_transform_is_monotone_and_standardised(self, rng):
        values = rng.normal(3.0, 10.0, size=50)
        z = gaussian_copula_transform(values)
        order_original = np.argsort(values)
        order_transformed = np.argsort(z)
        assert np.array_equal(order_original, order_transformed)
        assert abs(z.mean()) < 0.2

    def test_transfer_run_improves(self, quadratic_problem, rng):
        # Source data from the same (synthetic) design space.
        source_x = rng.uniform(size=(40, 3))
        source_y = -np.sum((source_x - 0.6) ** 2, axis=1)
        optimizer = TLMBO(quadratic_problem, source_x=source_x, source_y=source_y,
                          batch_size=1, rng=0, surrogate_train_iters=10)
        history = optimizer.optimize(n_simulations=14, n_init=6)
        assert history.best_objective(constrained=False) > -0.15

    def test_rejects_mismatched_design_space(self, quadratic_problem, rng):
        with pytest.raises(OptimizationError):
            TLMBO(quadratic_problem, source_x=rng.uniform(size=(10, 5)),
                  source_y=rng.normal(size=10))


class TestHumanExpert:
    def test_designs_exist_for_all_circuits_and_nodes(self):
        designs = expert_designs()
        for circuit in ("two_stage_opamp", "three_stage_opamp", "bandgap"):
            for node in ("180nm", "40nm"):
                assert (circuit, node) in designs

    def test_expert_design_lookup(self):
        design = expert_design("two_stage_opamp", "180nm")
        assert "i_bias1" in design
        with pytest.raises(KeyError):
            expert_design("pll", "180nm")

    def test_expert_designs_return_copies(self):
        first = expert_design("bandgap", "180nm")
        first["r_ptat"] = 0.0
        assert expert_design("bandgap", "180nm")["r_ptat"] != 0.0

    def test_expert_two_stage_is_feasible(self, two_stage_problem):
        evaluation = evaluate_expert(two_stage_problem)
        assert evaluation.feasible
        assert evaluation.metrics["gain"] > 60.0
