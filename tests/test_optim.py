"""Tests for the optimizers: Adam, SGD, the L-BFGS wrapper and train_module."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import Linear, MLP, Module, Parameter
from repro.optim import Adam, SGD, minimize_lbfgs, train_module


def _quadratic_parameter():
    return Parameter([4.0, -3.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        theta = _quadratic_parameter()
        optimizer = Adam([theta], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            loss = ((theta - Tensor([1.0, 2.0])) ** 2).sum()
            loss.backward()
            optimizer.step()
        assert np.allclose(theta.data, [1.0, 2.0], atol=1e-2)

    def test_skips_parameters_without_grad(self):
        theta = Parameter([1.0])
        Adam([theta]).step()  # no gradient accumulated; must not crash
        assert np.allclose(theta.data, [1.0])

    def test_grad_clip_limits_step(self):
        theta = Parameter([0.0])
        optimizer = Adam([theta], lr=1.0, grad_clip=1e-3)
        theta.grad = np.array([1e6])
        optimizer.step()
        assert abs(theta.data[0]) <= 1.0 + 1e-9

    def test_weight_decay_shrinks(self):
        theta = Parameter([10.0])
        optimizer = Adam([theta], lr=0.5, weight_decay=1.0)
        for _ in range(50):
            optimizer.zero_grad()
            theta.grad = np.array([0.0])
            optimizer.step()
        assert abs(theta.data[0]) < 10.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter([1.0])], lr=-0.1)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter([1.0])], betas=(1.5, 0.9))


class TestSGD:
    def test_converges_with_momentum(self):
        theta = _quadratic_parameter()
        optimizer = SGD([theta], lr=0.05, momentum=0.8)
        for _ in range(200):
            optimizer.zero_grad()
            ((theta - Tensor([1.0, 2.0])) ** 2).sum().backward()
            optimizer.step()
        assert np.allclose(theta.data, [1.0, 2.0], atol=1e-2)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter([1.0])], momentum=1.0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter([1.0])], lr=0.0)


class TestLBFGS:
    def test_finds_box_minimum(self, rng):
        bounds = np.array([[-2.0, 2.0], [-2.0, 2.0]])
        x, value = minimize_lbfgs(lambda x: float(np.sum((x - 0.5) ** 2)), bounds,
                                  n_restarts=3, rng=rng)
        assert np.allclose(x, 0.5, atol=1e-4)
        assert value == pytest.approx(0.0, abs=1e-6)

    def test_respects_bounds(self, rng):
        bounds = np.array([[0.0, 1.0]])
        x, _ = minimize_lbfgs(lambda x: float(-x[0]), bounds, rng=rng)
        assert 0.0 <= x[0] <= 1.0
        assert x[0] == pytest.approx(1.0, abs=1e-6)

    def test_explicit_start_used(self, rng):
        bounds = np.array([[-5.0, 5.0]])
        x, _ = minimize_lbfgs(lambda x: float((x[0] - 3.0) ** 2), bounds,
                              x0=np.array([2.9]), n_restarts=0, rng=rng)
        assert x[0] == pytest.approx(3.0, abs=1e-4)

    def test_invalid_bounds_shape(self, rng):
        with pytest.raises(ValueError):
            minimize_lbfgs(lambda x: 0.0, np.zeros((3,)), rng=rng)

    def test_nan_objective_fallback(self, rng):
        bounds = np.array([[0.0, 1.0]])
        x, _ = minimize_lbfgs(lambda x: float("nan"), bounds, n_restarts=2, rng=rng)
        assert 0.0 <= x[0] <= 1.0


class TestTrainModule:
    def test_reduces_loss_and_returns_history(self, rng):
        model = MLP(1, 1, hidden=(8,), activation="tanh", rng=rng)
        x = np.linspace(-1, 1, 32).reshape(-1, 1)
        y = Tensor(np.sin(2 * x))

        def loss_fn():
            return ((model(x) - y) ** 2).mean()

        history = train_module(model, loss_fn, n_iters=80, lr=0.05)
        assert len(history) > 5
        assert history[-1] < history[0]

    def test_early_stop_on_stall(self, rng):
        theta = Parameter([0.0])

        class Wrapper(Module):
            def __init__(self):
                self.theta = theta

            def forward(self):
                return self.theta

        history = train_module(Wrapper(), lambda: (theta * 0.0).sum(),
                               n_iters=500, patience=5)
        assert len(history) < 500

    def test_keeps_best_state_on_divergence(self, rng):
        layer = Linear(1, 1, rng=rng)
        calls = {"n": 0}

        def loss_fn():
            calls["n"] += 1
            if calls["n"] > 3:
                return (layer(np.ones((1, 1))) * np.nan).sum()
            return (layer(np.ones((1, 1))) ** 2).sum()

        history = train_module(layer, loss_fn, n_iters=20)
        assert np.all(np.isfinite(layer.weight.data))
        assert len(history) == 3
