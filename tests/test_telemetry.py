"""Tests for the telemetry subsystem: registry, spans, stats, persistence.

The telemetry contract has two halves, both exercised here:

* **observability** -- with telemetry on, solves feed counters/histograms
  into the process registry, spans land in the trace buffer and export as a
  valid Perfetto JSON document, studies persist per-batch snapshots into
  the store's ``metrics`` table, and the HTTP API exposes the merged view
  as JSON (``/api/metrics``) and Prometheus text (``/metrics``);
* **non-interference** -- results are bit-identical with telemetry on and
  off (stats ride as ``compare=False`` metadata), and the disabled path
  does no registry work at all.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

import service_plugin  # noqa: F401 - registers the service_quadratic problem
from repro import telemetry
from repro.circuits import make_problem
from repro.service.api import create_server, metrics_overview, prometheus_body
from repro.service.store import ResultsStore, StoreCheckpoint
from repro.service.worker import Worker
from repro.spice.dc import dc_operating_point, dc_operating_point_batch
from repro.study import Study, StudySpec
from repro.telemetry import MetricsRegistry, SolveStats, prometheus_text
from repro.telemetry.registry import merge_snapshots
from repro.telemetry.report import render_report


@pytest.fixture
def telemetry_on():
    """Enable telemetry for one test, restoring the disabled default."""
    telemetry.reset()
    telemetry.enable()
    yield
    telemetry.disable()
    telemetry.reset()


def _spec(**overrides) -> StudySpec:
    base = dict(optimizer="random", circuit="service_quadratic",
                n_simulations=10, n_init=4, batch_size=3, seed=11)
    base.update(overrides)
    return StudySpec(**base)


def _ladder_circuit():
    from repro.spice.devices import Resistor, VoltageSource
    from repro.spice.netlist import Circuit
    circuit = Circuit("ladder")
    circuit.add(VoltageSource("V1", "in", "0", dc=1.0))
    circuit.add(Resistor("R1", "in", "mid", resistance=1e3))
    circuit.add(Resistor("R2", "mid", "0", resistance=1e3))
    return circuit


# ---------------------------------------------------------------------- #
# registry                                                                #
# ---------------------------------------------------------------------- #
class TestRegistry:
    def test_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        registry.observe("h", 3.0, (2.0, 5.0, 10.0))
        registry.observe("h", 7.0, (2.0, 5.0, 10.0))
        registry.observe("h", 99.0, (2.0, 5.0, 10.0))  # +Inf overflow bucket
        snap = registry.snapshot()
        assert snap["counters"]["a"] == 5
        hist = snap["histograms"]["h"]
        assert hist["counts"] == [0, 1, 1, 1]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(109.0)

    def test_merge_adds_and_skips_incompatible_bounds(self):
        a = MetricsRegistry()
        a.inc("n", 2)
        a.observe("h", 1.0, (2.0, 5.0))
        b = MetricsRegistry()
        b.inc("n", 3)
        b.observe("h", 9.0, (2.0, 5.0))
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["n"] == 5
        assert merged["histograms"]["h"]["count"] == 2
        # A histogram with different bounds cannot merge; it is dropped
        # rather than silently mixed into the wrong buckets.
        c = MetricsRegistry()
        c.observe("h", 1.0, (1.0, 2.0, 3.0))
        merged = merge_snapshots([a.snapshot(), c.snapshot()])
        assert merged["histograms"]["h"]["counts"] == [1, 0, 0]

    def test_merge_ignores_extra_payload_keys(self):
        a = MetricsRegistry()
        a.inc("n")
        merged = merge_snapshots([{**a.snapshot(), "pid": 1234}])
        assert merged["counters"]["n"] == 1

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.inc("repro_solves_total", 7)
        registry.observe("repro_solve_iterations", 3.0, (2.0, 5.0))
        text = prometheus_text(registry.snapshot())
        assert "# TYPE repro_solves_total counter\n" in text
        assert "repro_solves_total 7\n" in text
        assert "# TYPE repro_solve_iterations histogram\n" in text
        # Buckets are cumulative and end with +Inf.
        assert 'repro_solve_iterations_bucket{le="2"} 0\n' in text
        assert 'repro_solve_iterations_bucket{le="5"} 1\n' in text
        assert 'repro_solve_iterations_bucket{le="+Inf"} 1\n' in text
        assert "repro_solve_iterations_count 1\n" in text

    def test_report_renders(self):
        registry = MetricsRegistry()
        assert "no metrics" in render_report(registry.snapshot())
        registry.inc("repro_solves_total", 3)
        registry.observe("repro_solve_iterations", 4.0, (2.0, 5.0))
        text = render_report(registry.snapshot())
        assert "repro_solves_total" in text
        assert "repro_solve_iterations" in text


# ---------------------------------------------------------------------- #
# spans and traces                                                        #
# ---------------------------------------------------------------------- #
class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        assert telemetry.span("x") is telemetry.span("y")
        with telemetry.span("x", circuit="c"):
            pass
        assert telemetry.trace.events() == []

    def test_nested_spans_export_perfetto_json(self, telemetry_on, tmp_path):
        with telemetry.span("outer", kind="test"):
            with telemetry.span("inner"):
                pass
        events = telemetry.trace.events()
        assert [e["name"] for e in events] == ["inner", "outer"]
        path = tmp_path / "trace.json"
        assert telemetry.export_trace(path) == 2
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert event["dur"] >= 0
            assert {"name", "ts", "pid", "tid"} <= set(event)
        assert doc["traceEvents"][1]["args"] == {"kind": "test"}

    def test_span_exits_record_even_on_exception(self, telemetry_on):
        with pytest.raises(RuntimeError):
            with telemetry.span("boom"):
                raise RuntimeError("x")
        assert [e["name"] for e in telemetry.trace.events()] == ["boom"]


# ---------------------------------------------------------------------- #
# solver stats                                                            #
# ---------------------------------------------------------------------- #
class TestSolveStats:
    def test_serial_dc_attaches_stats(self):
        op = dc_operating_point(_ladder_circuit())
        stats = op.stats
        assert stats is not None and stats.converged
        assert stats.analysis == "dc"
        assert stats.iterations == sum(stats.iterations_per_gmin)
        assert np.isfinite(stats.final_residual)

    def test_batch_stats_match_serial(self):
        serial = dc_operating_point(_ladder_circuit()).stats
        batched = dc_operating_point_batch(
            [_ladder_circuit(), _ladder_circuit()])[0].stats
        assert batched.batch_size == 2
        for field in ("iterations", "iterations_per_gmin", "gmin_steps",
                      "final_residual", "final_gmin", "damping_clamps",
                      "rescue_entered"):
            assert getattr(batched, field) == getattr(serial, field), field

    def test_stats_are_noncomparing_metadata(self):
        import dataclasses
        from repro.spice.dc import OperatingPoint
        from repro.spice.transient import TransientResult
        for cls in (OperatingPoint, TransientResult):
            field = {f.name: f for f in dataclasses.fields(cls)}["stats"]
            assert field.compare is False, cls
            assert field.repr is False, cls
        op = dc_operating_point(_ladder_circuit())
        assert "stats" not in repr(op)

    def test_record_solve_feeds_registry(self, telemetry_on):
        dc_operating_point(_ladder_circuit())
        snap = telemetry.snapshot()
        assert snap["counters"]["repro_solves_total"] == 1
        assert snap["counters"]["repro_newton_iterations_total"] > 0
        assert snap["histograms"]["repro_solve_iterations"]["count"] == 1

    def test_disabled_records_nothing(self):
        telemetry.reset()
        dc_operating_point(_ladder_circuit())
        snap = telemetry.snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}

    def test_failure_detail_format(self):
        stats = SolveStats(converged=False, iterations=40,
                           final_residual=1.25e-3, final_gmin=1e-6)
        detail = stats.failure_detail()
        assert "after 40 Newton iterations" in detail
        assert "residual=1.250e-03" in detail
        assert "gmin=1e-06" in detail


# ---------------------------------------------------------------------- #
# bit-identity with telemetry on vs off                                   #
# ---------------------------------------------------------------------- #
class TestBitIdentity:
    def test_study_identical_with_telemetry_on_and_off(self):
        telemetry.reset()
        baseline = Study(_spec()).run()
        telemetry.enable()
        try:
            instrumented = Study(_spec()).run()
        finally:
            telemetry.disable()
            telemetry.reset()
        np.testing.assert_array_equal(instrumented.history.x,
                                      baseline.history.x)
        np.testing.assert_array_equal(instrumented.history.objectives,
                                      baseline.history.objectives)
        np.testing.assert_array_equal(instrumented.best_curve(),
                                      baseline.best_curve())

    def test_circuit_op_identical_with_telemetry_on_and_off(self):
        problem = make_problem("two_stage_opamp")
        x = problem.design_space.sample(2, rng=np.random.default_rng(3))
        try:
            telemetry.reset()
            baseline = problem.evaluate_batch(x)
            telemetry.enable()
            try:
                instrumented = problem.evaluate_batch(x)
            finally:
                telemetry.disable()
                telemetry.reset()
        finally:
            problem.close()
        for a, b in zip(baseline, instrumented):
            assert a.objective == b.objective
            assert a.metrics == b.metrics


# ---------------------------------------------------------------------- #
# persistence + HTTP endpoints                                            #
# ---------------------------------------------------------------------- #
def _get(port: int, path: str):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}",
                                timeout=10) as response:
        body = response.read().decode()
        return response.headers.get("Content-Type", ""), body


class TestServiceTelemetry:
    def test_store_study_persists_metrics_snapshots(self, tmp_path,
                                                    telemetry_on):
        store = ResultsStore(tmp_path / "results.db")
        try:
            Study(_spec(), checkpoint=StoreCheckpoint(store, "st")).run()
            rows = store.metrics_rows("st")
            assert rows, "telemetry-enabled store study wrote no snapshots"
            latest = rows[-1]["payload"]
            assert latest["counters"]["repro_designs_evaluated_total"] > 0
            assert "pid" in latest
            overview = metrics_overview(store)
            assert (overview["merged"]["counters"]
                    ["repro_designs_evaluated_total"] > 0)
        finally:
            store.close()

    def test_disabled_study_writes_no_snapshots(self, tmp_path):
        telemetry.reset()
        store = ResultsStore(tmp_path / "results.db")
        try:
            Study(_spec(), checkpoint=StoreCheckpoint(store, "st")).run()
            assert store.metrics_rows("st") == []
        finally:
            store.close()

    def test_worker_heartbeats_carry_throughput(self, tmp_path, telemetry_on):
        from repro.service.queue import WorkQueue
        store = ResultsStore(tmp_path / "results.db")
        try:
            queue = WorkQueue(store)
            spec_dict = _spec().to_dict()
            x = [[0.2, 0.4, 0.6], [0.1, 0.9, 0.5]]
            queue.enqueue("st", 0, 0, {"kind": "evaluate", "spec": spec_dict,
                                       "x": x})
            worker = Worker(store, worker_id="w-test")
            worker.run(max_jobs=1, idle_timeout=0.5)
            row = store.list_workers()[0]
            assert row["rows_done"] == 2
            assert row["busy_seconds"] > 0
            assert store.metrics_rows("st"), "worker wrote no snapshot"
            health = metrics_overview(store)["workers"][0]
            assert health["rows_per_second"] > 0
        finally:
            store.close()

    def test_metrics_endpoints(self, tmp_path, telemetry_on):
        store = ResultsStore(tmp_path / "results.db")
        server = create_server(store, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            Study(_spec(), checkpoint=StoreCheckpoint(store, "st")).run()
            port = server.server_address[1]
            content_type, body = _get(port, "/api/metrics")
            assert content_type.startswith("application/json")
            overview = json.loads(body)
            counters = overview["merged"]["counters"]
            assert counters["repro_designs_evaluated_total"] > 0
            assert "queue_latency" in overview and "workers" in overview
            content_type, text = _get(port, "/metrics")
            assert content_type.startswith("text/plain")
            assert "# TYPE repro_designs_evaluated_total counter" in text
            assert "repro_queue_jobs" in text
        finally:
            server.shutdown()
            server.server_close()
            store.close()

    def test_prometheus_body_without_snapshots(self, tmp_path):
        telemetry.reset()
        store = ResultsStore(tmp_path / "empty.db")
        try:
            text = prometheus_body(store)
            assert isinstance(text, str)  # no snapshots -> empty-but-valid
        finally:
            store.close()


# ---------------------------------------------------------------------- #
# store migration                                                         #
# ---------------------------------------------------------------------- #
def test_old_store_gains_worker_throughput_columns(tmp_path):
    """A db created before the throughput columns migrates on open."""
    import sqlite3
    path = tmp_path / "old.db"
    conn = sqlite3.connect(path)
    conn.execute("""CREATE TABLE workers (
        worker_id TEXT PRIMARY KEY, hostname TEXT NOT NULL DEFAULT '',
        pid INTEGER, status TEXT NOT NULL DEFAULT 'idle',
        current_job INTEGER, n_jobs_done INTEGER NOT NULL DEFAULT 0,
        started_at REAL NOT NULL, heartbeat_at REAL NOT NULL)""")
    conn.execute("""INSERT INTO workers
        (worker_id, started_at, heartbeat_at) VALUES ('w', 0, 0)""")
    conn.commit()
    conn.close()
    store = ResultsStore(path)
    try:
        store.worker_heartbeat("w", "idle", rows_delta=3,
                               busy_seconds_delta=1.5)
        row = store.list_workers()[0]
        assert row["rows_done"] == 3
        assert row["busy_seconds"] == 1.5
    finally:
        store.close()
