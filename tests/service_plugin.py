"""A registry plugin shared by the service tests and their subprocesses.

``tests/test_service.py`` imports this module to register the cheap
``service_quadratic`` problem in the test process, and passes
``--import service_plugin`` so ``python -m repro worker`` / ``resume``
subprocesses register it too (with ``tests/`` on their ``PYTHONPATH``).

``SVC_SIM_SLEEP`` (seconds, float) stalls every simulation -- how the
lease-expiry test makes one worker slow enough to SIGKILL mid-job without
slowing anything else down.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.bo.design_space import DesignSpace, DesignVariable
from repro.bo.problem import Constraint, OptimizationProblem
from repro.circuits.registry import register_problem


class ServiceQuadratic(OptimizationProblem):
    """Cheap deterministic constrained minimisation (see test_study.py)."""

    def __init__(self, technology: str = "180nm", dim: int = 3):
        space = DesignSpace(
            [DesignVariable(f"x{i}", 0.0, 1.0) for i in range(dim)])
        super().__init__(name=f"service_quadratic_{technology}",
                         design_space=space, objective="f", minimize=True,
                         constraints=[Constraint("g", 0.1, sense="ge")])

    def simulate(self, design):
        delay = float(os.environ.get("SVC_SIM_SLEEP", "0"))
        if delay:
            time.sleep(delay)
        x = np.array([design[f"x{i}"]
                      for i in range(self.design_space.dim)])
        return {"f": float(np.sum((x - 0.4) ** 2)), "g": float(x[0])}


register_problem("service_quadratic", overwrite=True)(ServiceQuadratic)
