"""Tests for the unified Study API: registry, specs, driver, checkpoint, CLI.

The optimization-loop tests run against a cheap quadratic problem registered
into the circuits registry (so declarative specs resolve it), keeping the
suite fast while exercising the same code paths as the real testbenches.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bo.design_space import DesignSpace, DesignVariable
from repro.bo.mace import MACE
from repro.bo.problem import Constraint, OptimizationProblem
from repro.circuits.registry import register_problem
from repro.errors import OptimizationError
from repro.study import (
    BuildContext,
    EarlyStopping,
    LoggingCallback,
    Study,
    StudyCallback,
    StudySpec,
    TransferSpec,
    UnknownOptimizerError,
    available_optimizers,
    build_optimizer,
    optimizer_aliases,
    read_checkpoint,
    resolve_optimizer,
    run_study,
)
from repro.study.cli import main as cli_main
from repro.study.spec import SpecError


class _StudyQuadratic(OptimizationProblem):
    """Cheap deterministic minimisation problem with one constraint."""

    def __init__(self, technology: str = "180nm", dim: int = 3):
        space = DesignSpace([DesignVariable(f"x{i}", 0.0, 1.0) for i in range(dim)])
        super().__init__(name=f"study_quadratic_{technology}", design_space=space,
                         objective="f", minimize=True,
                         constraints=[Constraint("g", 0.1, sense="ge")])

    def simulate(self, design):
        x = np.array([design[f"x{i}"] for i in range(self.design_space.dim)])
        return {"f": float(np.sum((x - 0.4) ** 2)), "g": float(x[0])}


class _StudyQuadraticFree(OptimizationProblem):
    """Unconstrained variant (exercises the FOM-style optimizer paths)."""

    def __init__(self, technology: str = "180nm", dim: int = 3):
        space = DesignSpace([DesignVariable(f"x{i}", 0.0, 1.0) for i in range(dim)])
        super().__init__(name=f"study_quadratic_free_{technology}",
                         design_space=space, objective="f", minimize=False,
                         constraints=[])

    def simulate(self, design):
        x = np.array([design[f"x{i}"] for i in range(self.design_space.dim)])
        return {"f": float(-np.sum((x - 0.6) ** 2))}


register_problem("study_quadratic", overwrite=True)(_StudyQuadratic)
register_problem("study_quadratic_free", overwrite=True)(_StudyQuadraticFree)

#: Tiny-but-real optimizer settings reused across the loop tests.
_MACE_OPTIONS = {"surrogate_train_iters": 8, "pop_size": 12, "n_generations": 4}
_KATO_OPTIONS = {"surrogate_train_iters": 8, "kat_train_iters": 12,
                 "pop_size": 12, "n_generations": 4}


def _spec(**overrides) -> StudySpec:
    base = dict(optimizer="rs", circuit="study_quadratic", n_simulations=12,
                n_init=6, batch_size=3, seed=7)
    base.update(overrides)
    return StudySpec(**base)


# ---------------------------------------------------------------------- #
# registry                                                                #
# ---------------------------------------------------------------------- #
class TestRegistry:
    def test_all_paper_optimizers_registered(self):
        names = available_optimizers()
        for expected in ("random_search", "smac_rf", "mace", "mace_modified",
                         "mesmoc", "usemoc", "tlmbo", "kato", "kato_tl", "gp_ei"):
            assert expected in names

    def test_aliases_resolve_from_one_table(self):
        aliases = optimizer_aliases()
        assert aliases["rs"] == "random_search"
        assert aliases["random"] == "random_search"
        assert aliases["smac"] == "smac_rf"
        for alias, canonical in aliases.items():
            assert resolve_optimizer(alias).name == canonical

    def test_hyphen_and_case_insensitive(self):
        assert resolve_optimizer("KATO-TL").name == "kato_tl"
        assert resolve_optimizer("Smac-RF").name == "smac_rf"
        assert resolve_optimizer("RS").name == "random_search"

    def test_did_you_mean_hint(self):
        with pytest.raises(UnknownOptimizerError, match="did you mean"):
            resolve_optimizer("kato_t1")

    def test_unknown_is_value_error(self):
        # The deprecated shims relied on ValueError; keep that contract.
        with pytest.raises(ValueError):
            resolve_optimizer("definitely_not_registered")

    def test_mace_dispatches_on_constraints(self):
        from repro.bo.constrained_mace import ConstrainedMACE
        rng = np.random.default_rng(0)
        constrained = build_optimizer("mace", _StudyQuadratic(), rng)
        assert isinstance(constrained, ConstrainedMACE)
        assert constrained.variant == "full"
        unconstrained = build_optimizer("mace", _StudyQuadraticFree(), rng)
        assert isinstance(unconstrained, MACE)

    def test_capability_checks(self):
        rng = np.random.default_rng(0)
        with pytest.raises(UnknownOptimizerError, match="constrained"):
            build_optimizer("mesmoc", _StudyQuadraticFree(), rng)
        with pytest.raises(UnknownOptimizerError, match="source model"):
            build_optimizer("kato_tl", _StudyQuadratic(), rng)
        with pytest.raises(UnknownOptimizerError, match="source data"):
            build_optimizer("tlmbo", _StudyQuadraticFree(), rng)
        # TLMBO is constraint-blind: constrained problems must be rejected
        # (as the old build_constrained_optimizer factory did).
        with pytest.raises(UnknownOptimizerError, match="constrained"):
            build_optimizer("tlmbo", _StudyQuadratic(), rng)

    def test_options_reach_constructor(self):
        optimizer = build_optimizer("rs", _StudyQuadratic(),
                                    np.random.default_rng(0), batch_size=7)
        assert optimizer.batch_size == 7

    def test_build_context_merges_overrides(self):
        context = BuildContext(batch_size=2, options={"pop_size": 9})
        kwargs = context.constructor_kwargs(batch_size=4, pop_size=64, beta=2.0)
        assert kwargs == {"batch_size": 2, "pop_size": 9, "beta": 2.0}


# ---------------------------------------------------------------------- #
# specs                                                                   #
# ---------------------------------------------------------------------- #
class TestStudySpec:
    def test_round_trip_through_json(self):
        spec = _spec(transfer=TransferSpec(circuit="study_quadratic",
                                           n_samples=5, seed=3),
                     optimizer_options={"alpha": 1.5})
        clone = StudySpec.from_json(spec.to_json())
        assert clone == spec

    def test_unknown_key_has_hint(self):
        with pytest.raises(SpecError, match="did you mean 'n_simulations'"):
            StudySpec.from_dict({"optimizer": "rs", "circuit": "study_quadratic",
                                 "n_simulation": 5})

    def test_unknown_transfer_key(self):
        with pytest.raises(SpecError, match="transfer"):
            StudySpec.from_dict({"optimizer": "rs", "circuit": "study_quadratic",
                                 "transfer": {"circuit": "x", "nsamples": 3}})

    @pytest.mark.parametrize("bad", [
        {"n_simulations": 0}, {"n_init": -1}, {"batch_size": 0},
        {"n_seeds": 0}, {"backend": "gpu"},
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(SpecError):
            _spec(**bad)

    def test_validate_resolves_names(self):
        with pytest.raises(UnknownOptimizerError):
            _spec(optimizer="no_such_method").validate()
        with pytest.raises(SpecError, match="circuit"):
            _spec(circuit="no_such_circuit").validate()

    def test_spawn_seeds_deterministic_and_distinct(self):
        spec = _spec(n_seeds=4, seed=11)
        first, second = spec.spawn_seeds(), spec.spawn_seeds()
        assert first == second
        assert len(set(first)) == 4
        assert _spec(n_seeds=1, seed=11).spawn_seeds() == [11]

    def test_for_seed_pins_single_repetition(self):
        child = _spec(n_seeds=3).for_seed(99)
        assert child.seed == 99 and child.n_seeds == 1

    def test_from_file_rejects_non_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("not json")
        with pytest.raises(SpecError, match="not valid JSON"):
            StudySpec.from_file(path)

    def test_build_problem_attaches_backend(self):
        problem = _spec(backend="thread").build_problem()
        try:
            assert problem.engine.backend.name == "thread"
        finally:
            problem.engine.close()

    def test_env_backend_is_deprecated_but_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_BACKEND", "thread")
        spec = _spec()
        with pytest.warns(DeprecationWarning, match="StudySpec.backend"):
            assert spec.resolved_backend() == "thread"
        # An explicit spec backend wins silently: one documented path.
        assert _spec(backend="serial").resolved_backend() == "serial"

    def test_env_backend_unset_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_BACKEND", raising=False)
        assert _spec().resolved_backend() == "serial"


# ---------------------------------------------------------------------- #
# the driver                                                              #
# ---------------------------------------------------------------------- #
class _Recorder(StudyCallback):
    def __init__(self):
        self.events = []

    def on_init(self, study, evaluations):
        self.events.append(("init", len(evaluations)))

    def on_batch(self, study, iteration, evaluations):
        self.events.append(("batch", iteration, len(evaluations)))

    def on_finish(self, study, result):
        self.events.append(("finish", result.n_simulations))


class TestStudy:
    def test_run_produces_result_record(self):
        result = Study(_spec()).run()
        assert result.n_simulations == 12
        record = result.to_record()
        assert record["kind"] == "study_result"
        assert record["problem"] == "study_quadratic_180nm"
        assert len(record["curve"]) == 12
        assert record["best_objective"] is not None
        assert StudySpec.from_dict(record["spec"]) == _spec()

    def test_callback_order_and_counts(self):
        recorder = _Recorder()
        Study(_spec(), callbacks=(recorder,)).run()
        assert recorder.events[0] == ("init", 6)
        assert recorder.events[-1] == ("finish", 12)
        batches = [e for e in recorder.events if e[0] == "batch"]
        assert [e[1] for e in batches] == [1, 2]

    def test_early_stopping_resets_between_runs(self):
        # run_study shares one callback instance across seeds; on_init must
        # wipe the previous run's incumbent and stall counter.
        stopper = EarlyStopping(patience=2, min_delta=10.0)
        outcome = run_study(_spec(n_simulations=60, n_seeds=2),
                            callbacks=(stopper,))
        for result in outcome["results"]:
            # Each seed stalls on its own evidence: patience batches after
            # its own init, never instantly off the previous seed's best.
            assert result.n_iterations >= 2

    def test_early_stopping_by_patience(self):
        result = Study(_spec(n_simulations=60),
                       callbacks=(EarlyStopping(patience=2, min_delta=10.0),)
                       ).run()
        assert result.stop_reason is not None
        assert result.n_simulations < 60

    def test_early_stopping_by_target(self):
        # Minimisation problem: any objective beats a huge target immediately.
        result = Study(_spec(n_simulations=60),
                       callbacks=(EarlyStopping(target=1e9),)).run()
        assert "target" in result.stop_reason
        assert result.n_iterations == 1

    def test_logging_callback_writes(self, capsys):
        import io
        stream = io.StringIO()
        Study(_spec(), callbacks=(LoggingCallback(stream=stream),)).run()
        text = stream.getvalue()
        assert "initialized with 6 designs" in text
        assert "finished after 12 simulations" in text

    def test_zero_init_without_data_is_explicit_error(self):
        with pytest.raises(OptimizationError, match="n_init"):
            Study(_spec(n_init=0)).run()

    def test_multi_seed_spec_requires_run_study(self):
        with pytest.raises(OptimizationError, match="run_study"):
            Study(_spec(n_seeds=2))

    def test_run_study_aggregates(self):
        outcome = run_study(_spec(n_seeds=3))
        assert outcome["curves"].shape == (3, 12)
        assert len(outcome["histories"]) == 3
        assert len(set(outcome["seeds"])) == 3
        assert outcome["summary"]["mean"].shape == (12,)
        # Different seeds must explore differently.
        assert not np.array_equal(outcome["curves"][0], outcome["curves"][1])

    def test_run_study_rejects_callbacks_with_parallel_runner(self):
        with pytest.raises(OptimizationError, match="callbacks"):
            run_study(_spec(n_seeds=2), callbacks=(_Recorder(),),
                      runner_backend="thread")

    def test_run_study_thread_runner_matches_serial(self):
        spec = _spec(n_seeds=2)
        serial = run_study(spec)
        threaded = run_study(spec, runner_backend="thread")
        np.testing.assert_array_equal(serial["curves"], threaded["curves"])

    def test_optimizer_factory_escape_hatch(self):
        def factory(problem, rng):
            from repro.bo import RandomSearch
            return RandomSearch(problem, batch_size=3, rng=rng)

        result = Study(_spec(optimizer="ignored_by_factory"),
                       optimizer_factory=factory).run()
        assert result.n_simulations == 12


# ---------------------------------------------------------------------- #
# checkpoint / resume                                                     #
# ---------------------------------------------------------------------- #
class _KillAfter(StudyCallback):
    """Simulates a mid-run kill by raising after N batches."""

    def __init__(self, batches: int):
        self.batches = batches

    def on_batch(self, study, iteration, evaluations):
        if iteration >= self.batches:
            raise KeyboardInterrupt


def _mace_spec(backend: str) -> StudySpec:
    return StudySpec(optimizer="mace", circuit="study_quadratic",
                     n_simulations=14, n_init=6, batch_size=2, seed=5,
                     backend=backend, optimizer_options=_MACE_OPTIONS)


def _kato_spec(backend: str) -> StudySpec:
    return StudySpec(optimizer="kato_tl", circuit="study_quadratic",
                     n_simulations=12, n_init=6, batch_size=2, seed=9,
                     backend=backend, optimizer_options=_KATO_OPTIONS,
                     transfer=TransferSpec(circuit="study_quadratic",
                                           n_samples=6, seed=1, train_iters=5))


class TestCheckpointResume:
    def _kill_and_resume(self, spec: StudySpec, tmp_path):
        """Reference run, killed run, resumed run; returns (ref, resumed)."""
        reference = Study(spec).run()
        checkpoint = tmp_path / "study.ckpt.jsonl"
        with pytest.raises(KeyboardInterrupt):
            Study(spec, callbacks=(_KillAfter(2),),
                  checkpoint_path=str(checkpoint)).run()
        data = read_checkpoint(checkpoint)
        assert not data.finished
        assert 0 < len(data.evaluations) < spec.n_simulations
        resumed = Study.resume(str(checkpoint)).run()
        assert resumed.resumed and resumed.n_replayed == len(data.evaluations)
        return reference, resumed

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_mace_resume_bit_identical(self, backend, tmp_path):
        reference, resumed = self._kill_and_resume(_mace_spec(backend), tmp_path)
        np.testing.assert_array_equal(reference.history.x, resumed.history.x)
        np.testing.assert_array_equal(reference.history.objectives,
                                      resumed.history.objectives)

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_kato_resume_bit_identical(self, backend, tmp_path):
        reference, resumed = self._kill_and_resume(_kato_spec(backend), tmp_path)
        np.testing.assert_array_equal(reference.history.x, resumed.history.x)
        np.testing.assert_array_equal(reference.history.objectives,
                                      resumed.history.objectives)

    def test_replayed_prefix_consumes_no_simulations(self, tmp_path):
        spec = _mace_spec("serial")
        checkpoint = tmp_path / "study.ckpt.jsonl"
        with pytest.raises(KeyboardInterrupt):
            Study(spec, callbacks=(_KillAfter(2),),
                  checkpoint_path=str(checkpoint)).run()
        replayed = read_checkpoint(checkpoint).evaluations
        resumed = Study.resume(str(checkpoint)).run()
        # The replayed prefix is free (served from the primed cache): at most
        # the post-checkpoint tail is simulated -- possibly less, since the
        # cache also serves any re-proposed duplicates (the paper's cost
        # unit is expensive simulations).
        assert resumed.engine_stats["n_evaluated"] <= (
            resumed.n_simulations - len(replayed))
        assert resumed.engine_stats["cache"]["hits"] >= len(replayed)

    def test_resume_tolerates_truncated_final_line(self, tmp_path):
        spec = _mace_spec("serial")
        checkpoint = tmp_path / "study.ckpt.jsonl"
        reference = Study(spec, checkpoint_path=str(checkpoint)).run()
        lines = checkpoint.read_text().splitlines()
        # Keep header + init + one step, then a torn half-written record.
        checkpoint.write_text("\n".join(lines[:3]) + "\n" + lines[3][:40])
        resumed = Study.resume(str(checkpoint)).run()
        np.testing.assert_array_equal(reference.history.x, resumed.history.x)

    def test_checkpoint_of_completed_run_resumes_to_same_result(self, tmp_path):
        spec = _mace_spec("serial")
        checkpoint = tmp_path / "study.ckpt.jsonl"
        reference = Study(spec, checkpoint_path=str(checkpoint)).run()
        data = read_checkpoint(checkpoint)
        assert data.finished
        resumed = Study.resume(str(checkpoint)).run()
        np.testing.assert_array_equal(reference.history.x, resumed.history.x)
        assert resumed.engine_stats["n_evaluated"] == 0

    def test_multi_seed_transfer_resume_with_unset_source_seed(self, tmp_path):
        # transfer.seed is unset: for_seed must pin it to the parent seed,
        # so a resumed child checkpoint rebuilds the identical source
        # instead of deriving one from the child seed.
        spec = StudySpec(optimizer="kato_tl", circuit="study_quadratic",
                         n_simulations=10, n_init=6, batch_size=2, seed=3,
                         n_seeds=2, optimizer_options=_KATO_OPTIONS,
                         transfer=TransferSpec(circuit="study_quadratic",
                                               n_samples=6, train_iters=5))
        checkpoint = str(tmp_path / "tl.ckpt.jsonl")
        outcome = run_study(spec, checkpoint_path=checkpoint)
        reference = outcome["results"][0]
        assert StudySpec.from_dict(
            read_checkpoint(checkpoint + ".seed0").spec_dict).transfer.seed == 3
        resumed = Study.resume(checkpoint + ".seed0").run()
        np.testing.assert_array_equal(reference.history.x, resumed.history.x)
        assert resumed.engine_stats["n_evaluated"] == 0

    def test_killed_resume_never_loses_checkpointed_progress(self, tmp_path):
        spec = _mace_spec("serial")
        checkpoint = tmp_path / "study.ckpt.jsonl"
        with pytest.raises(KeyboardInterrupt):
            Study(spec, callbacks=(_KillAfter(3),),
                  checkpoint_path=str(checkpoint)).run()
        before = read_checkpoint(checkpoint)
        # Kill the *resume* during its replay (callbacks fire for replayed
        # batches too): the checkpoint must still hold everything it had.
        with pytest.raises(KeyboardInterrupt):
            Study.resume(str(checkpoint), callbacks=(_KillAfter(1),)).run()
        after = read_checkpoint(checkpoint)
        assert len(after.evaluations) >= len(before.evaluations)
        # And a clean resume from the surviving file still completes.
        resumed = Study.resume(str(checkpoint)).run()
        reference = Study(spec).run()
        np.testing.assert_array_equal(reference.history.x, resumed.history.x)

    def test_resume_of_cache_disabled_spec_is_rejected(self, tmp_path):
        spec = _mace_spec("serial")
        checkpoint = tmp_path / "study.ckpt.jsonl"
        Study(spec, checkpoint_path=str(checkpoint)).run()
        # Forge the recorded spec to cache=False, as a stochastic-simulator
        # study would have written it.
        lines = checkpoint.read_text().splitlines()
        header = json.loads(lines[0])
        header["spec"]["cache"] = False
        checkpoint.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(OptimizationError, match="cache=False"):
            Study.resume(str(checkpoint)).run()

    def test_read_checkpoint_rejects_garbage(self, tmp_path):
        from repro.study import CheckpointError
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "batch"}\n')
        with pytest.raises(CheckpointError, match="header"):
            read_checkpoint(path)

    def test_yield_study_resume_bit_identical(self, tmp_path):
        # Kill-and-resume of a Monte Carlo *yield* study: the resumed run
        # must rebuild the identical problem (MC config via problem_options)
        # and the replayed prefix plus the freshly simulated tail must match
        # an uninterrupted run bit for bit -- which also proves the sampler
        # streams are stable across checkpoint/resume.
        spec = StudySpec(
            optimizer="rs", circuit="two_stage_opamp_yield",
            n_simulations=12, n_init=4, batch_size=2, seed=3,
            problem_options={"yield_target": 0.5,
                             "mc": {"n_max": 12, "n_min": 6,
                                    "batch_size": 6, "seed": 5}})
        reference, resumed = self._kill_and_resume(spec, tmp_path)
        np.testing.assert_array_equal(reference.history.x, resumed.history.x)
        np.testing.assert_array_equal(reference.history.objectives,
                                      resumed.history.objectives)
        for ref, res in zip(reference.history.evaluations,
                            resumed.history.evaluations):
            assert ref.metrics == res.metrics
        assert "yield" in reference.history.evaluations[0].metrics


# ---------------------------------------------------------------------- #
# initialize() contract (BaseOptimizer satellite fix)                     #
# ---------------------------------------------------------------------- #
class TestInitializeContract:
    def test_empty_evaluations_with_zero_init_is_noop(self):
        from repro.bo import RandomSearch
        optimizer = RandomSearch(_StudyQuadratic(), rng=0)
        optimizer.initialize(n_init=0, initial_evaluations=[])
        assert len(optimizer.history) == 0

    def test_negative_n_init_raises(self):
        from repro.bo import RandomSearch
        optimizer = RandomSearch(_StudyQuadratic(), rng=0)
        with pytest.raises(OptimizationError, match="non-negative"):
            optimizer.initialize(n_init=-1)

    def test_optimize_with_no_start_data_is_clear_error(self):
        from repro.bo import RandomSearch
        optimizer = RandomSearch(_StudyQuadratic(), rng=0)
        with pytest.raises(OptimizationError, match="initial"):
            optimizer.optimize(n_simulations=4, n_init=0,
                               initial_evaluations=[])

    def test_provided_evaluations_count_toward_n_init(self):
        from repro.bo import RandomSearch
        problem = _StudyQuadratic()
        optimizer = RandomSearch(problem, rng=0)
        seeds = problem.evaluate_batch(problem.design_space.sample(4, rng=np.random.default_rng(0)))
        optimizer.initialize(n_init=4, initial_evaluations=seeds)
        assert len(optimizer.history) == 4  # nothing extra sampled


# ---------------------------------------------------------------------- #
# deprecated shims                                                        #
# ---------------------------------------------------------------------- #
class TestDeprecatedShims:
    def test_build_fom_optimizer_warns_and_builds(self):
        from repro.experiments.runner import build_fom_optimizer
        with pytest.warns(DeprecationWarning, match="registry"):
            optimizer = build_fom_optimizer("rs", _StudyQuadraticFree(),
                                            np.random.default_rng(0))
        assert optimizer.batch_size == 4

    def test_build_constrained_optimizer_resolves_mace_variant(self):
        from repro.bo.constrained_mace import ConstrainedMACE
        from repro.experiments.runner import build_constrained_optimizer
        with pytest.warns(DeprecationWarning):
            optimizer = build_constrained_optimizer(
                "mace", _StudyQuadratic(), np.random.default_rng(0))
        assert isinstance(optimizer, ConstrainedMACE)
        assert optimizer.variant == "full"

    def test_shim_unknown_name_is_value_error(self):
        from repro.experiments.runner import build_fom_optimizer
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="unknown optimizer"):
                build_fom_optimizer("nope", _StudyQuadraticFree(),
                                    np.random.default_rng(0))


# ---------------------------------------------------------------------- #
# the CLI                                                                 #
# ---------------------------------------------------------------------- #
class TestCLI:
    def test_list_optimizers_json(self, capsys):
        assert cli_main(["list-optimizers", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        names = {entry["name"] for entry in listing}
        assert {"kato", "kato_tl", "mace"} <= names

    def test_list_circuits_json_keeps_legacy_name_list(self, capsys):
        assert cli_main(["list-circuits", "--json"]) == 0
        names = json.loads(capsys.readouterr().out)
        assert "two_stage_opamp" in names and "study_quadratic" in names

    def test_list_problems_shows_problem_options(self, capsys):
        assert cli_main(["list-problems", "--json"]) == 0
        listing = {entry["name"]: entry
                   for entry in json.loads(capsys.readouterr().out)}
        assert "two_stage_opamp_yield" in listing
        yield_entry = listing["two_stage_opamp_yield"]
        assert "yield >= 0.9" in yield_entry["constraints"]
        assert {"yield_target", "mc", "backend"} <= set(
            yield_entry["problem_options"])
        corners_entry = listing["two_stage_opamp_corners"]
        assert "corners" in corners_entry["problem_options"]
        # The human-readable listing carries the same discovery info.
        assert cli_main(["list-problems"]) == 0
        text = capsys.readouterr().out
        assert "problem_options:" in text and "yield_target=0.9" in text

    def test_run_emits_valid_result_jsonl(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        _spec().save(spec_path)
        out_path = tmp_path / "results.jsonl"
        code = cli_main(["run", str(spec_path), "-o", str(out_path), "--quiet"])
        assert code == 0
        lines = out_path.read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        for key in ("kind", "spec", "seed", "n_simulations", "best_objective",
                    "curve", "engine"):
            assert key in record
        assert record["kind"] == "study_result"
        assert record["n_simulations"] >= 12

    def test_run_overrides(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        _spec().save(spec_path)
        out_path = tmp_path / "results.jsonl"
        assert cli_main(["run", str(spec_path), "-o", str(out_path),
                         "--quiet", "--seed", "42", "--n-seeds", "2"]) == 0
        records = [json.loads(line) for line in out_path.read_text().splitlines()]
        assert len(records) == 2
        assert records[0]["spec"]["seed"] != records[1]["spec"]["seed"]

    def test_run_checkpoint_and_resume(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        _mace_spec("serial").save(spec_path)
        out_path = tmp_path / "results.jsonl"
        checkpoint = tmp_path / "study.ckpt.jsonl"
        assert cli_main(["run", str(spec_path), "-o", str(out_path),
                         "--checkpoint", str(checkpoint), "--quiet"]) == 0
        reference = json.loads(out_path.read_text())
        # Truncate to a mid-run prefix, then resume through the CLI.
        lines = checkpoint.read_text().splitlines()
        checkpoint.write_text("\n".join(lines[:3]) + "\n")
        resumed_path = tmp_path / "resumed.jsonl"
        assert cli_main(["resume", str(checkpoint), "-o", str(resumed_path),
                         "--quiet"]) == 0
        resumed = json.loads(resumed_path.read_text())
        assert resumed["curve"] == reference["curve"]
        assert resumed["best_x"] == reference["best_x"]
        assert resumed["resumed"] is True

    def test_bad_spec_is_clean_error(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"optimizer": "rs",
                                         "circuit": "study_quadratic",
                                         "n_simulation": 3}))
        assert cli_main(["run", str(spec_path)]) == 2
        assert "did you mean" in capsys.readouterr().err

    def test_missing_file_is_clean_error(self, capsys):
        assert cli_main(["run", "/no/such/spec.json"]) == 2
        assert "error:" in capsys.readouterr().err
