"""Tests for repro.nn layers, parameter management and initialisation."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.nn import MLP, Identity, Linear, Module, Parameter, ReLU, Sequential, Sigmoid, Tanh
from repro.nn import init


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 3, rng=rng)
        assert layer(np.ones((5, 4))).shape == (5, 3)

    def test_forward_matches_manual(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(x).data, expected)

    def test_no_bias(self, rng):
        layer = Linear(3, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 2)

    def test_invalid_init_scheme(self):
        with pytest.raises(ValueError):
            Linear(2, 2, init_scheme="bogus")

    def test_gradients_flow(self, rng):
        layer = Linear(3, 2, rng=rng)
        loss = (layer(np.ones((4, 3))) ** 2).sum()
        loss.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestActivationsAndContainers:
    def test_sigmoid_range(self, rng):
        out = Sigmoid()(rng.normal(size=(10,)) * 5)
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_tanh_range(self, rng):
        out = Tanh()(rng.normal(size=(10,)) * 5)
        assert np.all(np.abs(out.data) <= 1)

    def test_relu_nonnegative(self, rng):
        assert np.all(ReLU()(rng.normal(size=(10,))).data >= 0)

    def test_identity(self, rng):
        x = rng.normal(size=(3, 3))
        assert np.allclose(Identity()(x).data, x)

    def test_sequential_order_and_indexing(self, rng):
        model = Sequential(Linear(2, 4, rng=rng), Tanh(), Linear(4, 1, rng=rng))
        assert len(model) == 3
        assert isinstance(model[1], Tanh)
        assert model(np.ones((5, 2))).shape == (5, 1)


class TestMLP:
    def test_paper_encoder_shape(self, rng):
        encoder = MLP(10, 8, hidden=(32,), activation="sigmoid", rng=rng)
        assert encoder(np.ones((6, 10))).shape == (6, 8)

    def test_parameter_count(self, rng):
        mlp = MLP(4, 2, hidden=(8,), rng=rng)
        assert mlp.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_output_activation(self, rng):
        bounded = MLP(3, 2, hidden=(4,), output_activation="sigmoid", rng=rng)
        out = bounded(np.ones((5, 3)) * 100.0)
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP(3, 2, activation="swish")

    def test_training_reduces_loss(self, rng):
        from repro.optim import Adam
        mlp = MLP(2, 1, hidden=(16,), activation="tanh", rng=rng)
        x = rng.uniform(-1, 1, size=(64, 2))
        y = (x[:, 0] * x[:, 1]).reshape(-1, 1)
        optimizer = Adam(mlp.parameters(), lr=0.05)
        losses = []
        for _ in range(60):
            optimizer.zero_grad()
            loss = ((mlp(x) - Tensor(y)) ** 2).mean()
            losses.append(loss.item())
            loss.backward()
            optimizer.step()
        assert losses[-1] < 0.5 * losses[0]


class TestModuleBookkeeping:
    def test_named_parameters_nested(self, rng):
        mlp = MLP(3, 2, hidden=(4,), rng=rng)
        names = [name for name, _ in mlp.named_parameters()]
        assert any("net.children.0.weight" in name for name in names)

    def test_parameters_unique(self, rng):
        layer = Linear(2, 2, rng=rng)

        class Shared(Module):
            def __init__(self):
                self.a = layer
                self.b = layer

            def forward(self, x):
                return self.a(x)

        assert len(Shared().parameters()) == 2  # weight + bias, not duplicated

    def test_state_dict_roundtrip(self, rng):
        mlp = MLP(3, 2, rng=rng)
        state = mlp.state_dict()
        for parameter in mlp.parameters():
            parameter.data = parameter.data + 1.0
        mlp.load_state_dict(state)
        fresh = mlp.state_dict()
        for key in state:
            assert np.allclose(state[key], fresh[key])

    def test_load_state_dict_rejects_mismatch(self, rng):
        mlp = MLP(3, 2, rng=rng)
        with pytest.raises(KeyError):
            mlp.load_state_dict({"bogus": np.zeros(3)})

    def test_zero_grad(self, rng):
        layer = Linear(2, 1, rng=rng)
        (layer(np.ones((3, 2)))).sum().backward()
        layer.zero_grad()
        assert all(p.grad is None for p in layer.parameters())

    def test_parameters_in_dict_attribute(self):
        class WithDict(Module):
            def __init__(self):
                self.items = {"a": Parameter([1.0]), "b": Parameter([2.0])}

            def forward(self, x):
                return x

        assert len(WithDict().parameters()) == 2


class TestInit:
    def test_xavier_uniform_bounds(self, rng):
        w = init.xavier_uniform(10, 10, rng)
        assert np.all(np.abs(w) <= np.sqrt(6.0 / 20) + 1e-12)

    def test_xavier_normal_shape(self, rng):
        assert init.xavier_normal(4, 7, rng).shape == (7, 4)

    def test_kaiming_uniform_shape(self, rng):
        assert init.kaiming_uniform(4, 7, rng).shape == (7, 4)

    def test_near_identity(self, rng):
        w = init.near_identity(5, 3, rng, noise=0.0)
        assert np.allclose(w, np.eye(3, 5))
