"""Tests for the Monte Carlo mismatch & yield subsystem.

Covers the pdk variation layer (Pelgrom cards, per-device samples, derived
fingerprints), the seeded samplers (determinism, batching invariance, stream
splitting), the Wilson estimator and the adaptive-stopping guarantee, the
runner's backend fan-out (bit-identical yield estimates and per-sample
fingerprints across serial/thread/process), and the registered ``*_yield``
sizing problems end to end.
"""

from __future__ import annotations

import gc
import warnings

import numpy as np
import pytest

from repro.bo.problem import Constraint
from repro.bench.aggregate import sigma_metrics, worst_case_metrics
from repro.circuits import make_problem
from repro.engine.backends import SerialBackend
from repro.mc import (
    MonteCarloConfig,
    MonteCarloRunner,
    YieldEstimator,
    available_samplers,
    classify_pass,
    make_sampler,
    wilson_interval,
)
from repro.pdk import (
    MismatchCard,
    VariationSample,
    apply_variation,
    get_technology,
    nominal_sample,
)

GOOD_TWO_STAGE = dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6, l_load=0.5e-6,
                      w_out=60e-6, l_out=0.3e-6, c_comp=2e-12, r_zero=2e3,
                      i_bias1=20e-6, i_bias2=100e-6)


# ---------------------------------------------------------------------- #
# pdk variation layer                                                     #
# ---------------------------------------------------------------------- #
class TestVariation:
    def test_pelgrom_sigma_scales_with_area(self):
        card = MismatchCard(avt=3.5e-9, abeta=1.0e-8)
        small = card.sigma_vth(1e-6, 0.18e-6)
        large = card.sigma_vth(4e-6, 0.72e-6)  # 4x W, 4x L -> 4x area
        assert small == pytest.approx(4.0 * large)
        assert card.sigma_beta(20e-6, 0.5e-6) == pytest.approx(
            1.0e-8 / np.sqrt(20e-6 * 0.5e-6))

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            MismatchCard(avt=-1e-9, abeta=0.0)

    def test_sample_requires_sorted_unique_devices(self):
        sample = VariationSample.from_zscores(0, ("MB", "MA"), [1, 2], [0, 0])
        assert sample.device_names == ("MA", "MB")
        with pytest.raises(ValueError, match="duplicate"):
            VariationSample.from_zscores(0, ("MA", "MA"), [1, 2], [0, 0])

    def test_with_variation_changes_fingerprint_only(self):
        tech = get_technology("180nm")
        sample = VariationSample.from_zscores(3, ("MN1",), [1.5], [-0.5])
        varied = tech.with_variation(sample)
        assert varied.name == tech.name
        assert varied.nmos == tech.nmos            # models stay nominal
        assert varied.fingerprint != tech.fingerprint
        assert tech.with_variation(None).fingerprint == tech.fingerprint
        # Distinct samples -> distinct fingerprints.
        other = tech.with_variation(
            VariationSample.from_zscores(4, ("MN1",), [1.5], [-0.5]))
        assert other.fingerprint != varied.fingerprint

    def test_apply_variation_shifts_named_mosfets(self):
        problem = make_problem("two_stage_opamp")
        circuit = problem.build_circuit(GOOD_TWO_STAGE)
        tech = problem.technology
        sample = VariationSample.from_zscores(
            0, ("MN1", "MN2"), [2.0, -2.0], [1.0, 0.0])
        apply_variation(circuit, tech.with_variation(sample))
        mn1, mn2 = circuit.device("MN1"), circuit.device("MN2")
        sigma = tech.nmos_mismatch.sigma_vth(mn1.width, mn1.length)
        assert mn1.model.vth0 == pytest.approx(tech.nmos.vth0 + 2.0 * sigma)
        assert mn2.model.vth0 == pytest.approx(tech.nmos.vth0 - 2.0 * sigma)
        sigma_beta = tech.nmos_mismatch.sigma_beta(mn1.width, mn1.length)
        assert mn1.model.kp == pytest.approx(tech.nmos.kp * (1 + sigma_beta))
        # Unnamed devices untouched.
        assert circuit.device("MP1").model is tech.pmos

    def test_nominal_sample_is_identity(self):
        problem = make_problem("two_stage_opamp")
        circuit = problem.build_circuit(GOOD_TWO_STAGE)
        names = problem.mismatch_device_names()
        apply_variation(circuit, problem.technology.with_variation(
            nominal_sample(names)))
        assert circuit.device("MN1").model == problem.technology.nmos

    def test_mismatch_device_names_all_mosfets(self):
        problem = make_problem("two_stage_opamp")
        assert problem.mismatch_device_names() == (
            "MN1", "MN2", "MP1", "MP2", "MP3")


# ---------------------------------------------------------------------- #
# samplers                                                                #
# ---------------------------------------------------------------------- #
class TestSamplers:
    DEVICES = ("MA", "MB", "MC")

    @pytest.mark.parametrize("name", ["normal", "lhs", "sobol"])
    def test_seeded_streams_are_bit_identical(self, name):
        a = make_sampler(name, self.DEVICES, seed=42, n_max=32)
        b = make_sampler(name, self.DEVICES, seed=42, n_max=32)
        np.testing.assert_array_equal(a.zscores, b.zscores)
        assert a.take(0, 32) == b.take(0, 32)

    @pytest.mark.parametrize("name", ["normal", "lhs", "sobol"])
    def test_batching_does_not_change_draws(self, name):
        sampler = make_sampler(name, self.DEVICES, seed=7, n_max=20)
        whole = sampler.take(0, 20)
        rebatched = sampler.take(0, 3) + sampler.take(3, 9) + sampler.take(12, 8)
        assert whole == rebatched

    def test_device_order_does_not_matter(self):
        a = make_sampler("normal", ("MA", "MB"), seed=1, n_max=4)
        b = make_sampler("normal", ("MB", "MA"), seed=1, n_max=4)
        assert a.take(0, 4) == b.take(0, 4)

    def test_split_streams_are_independent_and_deterministic(self):
        parent = make_sampler("normal", self.DEVICES, seed=9, n_max=16)
        children = parent.split(3)
        again = parent.split(3)
        assert len({child.seed for child in children}) == 3
        for child, repeat in zip(children, again):
            np.testing.assert_array_equal(child.zscores, repeat.zscores)
        assert not np.array_equal(children[0].zscores, children[1].zscores)

    def test_take_outside_stream_raises(self):
        sampler = make_sampler("normal", self.DEVICES, seed=0, n_max=8)
        with pytest.raises(ValueError, match="outside the stream"):
            sampler.take(4, 8)

    def test_unknown_sampler_hint(self):
        with pytest.raises(ValueError, match="unknown sampler"):
            make_sampler("sobool", self.DEVICES)

    def test_registry_names(self):
        assert {"normal", "lhs", "sobol"} <= set(available_samplers())

    @pytest.mark.parametrize("name", ["lhs", "sobol"])
    def test_stratified_zscores_are_finite_normals(self, name):
        sampler = make_sampler(name, self.DEVICES, seed=3, n_max=64)
        z = sampler.zscores
        assert np.all(np.isfinite(z))
        assert abs(float(np.mean(z))) < 0.25  # roughly centred


# ---------------------------------------------------------------------- #
# estimator                                                               #
# ---------------------------------------------------------------------- #
class TestEstimator:
    def test_wilson_interval_basic_properties(self):
        low, high = wilson_interval(50, 100, 0.95)
        assert 0.0 < low < 0.5 < high < 1.0
        # Tighter with more data.
        low2, high2 = wilson_interval(500, 1000, 0.95)
        assert high2 - low2 < high - low
        # Extreme proportions keep non-degenerate intervals inside [0, 1].
        low3, high3 = wilson_interval(100, 100, 0.95)
        assert low3 < 1.0 and high3 == 1.0
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_wilson_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError, match="confidence"):
            wilson_interval(1, 2, confidence=1.0)

    def test_estimator_accumulates(self):
        estimator = YieldEstimator(0.95)
        estimator.add(3, 4)
        estimator.update(True)
        est = estimator.estimate()
        assert est.n_samples == 5 and est.n_pass == 4
        assert est.value == pytest.approx(0.8)
        assert est.ci_low < 0.8 < est.ci_high
        metrics = est.as_metrics()
        assert set(metrics) == {"yield", "yield_ci_low", "yield_ci_high"}

    def test_reached_is_half_width_criterion(self):
        estimator = YieldEstimator(0.95)
        estimator.add(98, 100)
        half = estimator.estimate().half_width
        assert estimator.reached(half + 1e-12)
        assert not estimator.reached(half - 1e-12)
        assert not estimator.reached(None)


# ---------------------------------------------------------------------- #
# aggregation                                                             #
# ---------------------------------------------------------------------- #
class TestAggregate:
    CONSTRAINTS = [Constraint("g", 10.0, "ge"), Constraint("i", 5.0, "le")]

    def test_worst_case_unchanged_semantics(self):
        per_corner = [{"obj": 1.0, "g": 12.0, "i": 4.0, "extra": 7.0},
                      {"obj": 3.0, "g": 11.0, "i": 4.5, "extra": 9.0}]
        metrics = worst_case_metrics(per_corner, "obj", True, self.CONSTRAINTS)
        assert metrics["obj"] == 3.0 and metrics["g"] == 11.0
        assert metrics["i"] == 4.5 and metrics["extra"] == 7.0
        assert metrics["obj_nominal"] == 1.0

    def test_sigma_metrics_sense_aware_p99(self):
        rng = np.random.default_rng(0)
        g = 12.0 + rng.normal(size=200)
        per_sample = [{"obj": float(2 + 0.1 * k % 3), "g": float(v),
                       "i": float(4 + 0.01 * k)}
                      for k, v in enumerate(g)]
        out = sigma_metrics(per_sample, "obj", True, self.CONSTRAINTS)
        assert out["g_mean"] == pytest.approx(float(np.mean(g)), rel=1e-12)
        assert out["g_std"] == pytest.approx(float(np.std(g)), rel=1e-12)
        # 'ge' metric: p99 is the *low* tail; 'le' metric: the high tail.
        assert out["g_p99"] == pytest.approx(float(np.percentile(g, 1.0)))
        assert out["i_p99"] > out["i_mean"]
        # Minimised objective: p99 is the high tail.
        assert out["obj_p99"] >= out["obj_mean"]

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            worst_case_metrics([], "obj", True, [])
        with pytest.raises(ValueError):
            sigma_metrics([], "obj", True, [])

    def test_sigma_metrics_cover_union_of_keys(self):
        # A crashed first sample carries only the pessimised constraint
        # metrics; statistics for unconstrained measures seen in later
        # samples (e.g. the bandgap's vref) must still be reported.
        per_sample = [{"obj": 1e6, "g": -1e6},
                      {"obj": 2.0, "g": 12.0, "vref": 0.81},
                      {"obj": 2.1, "g": 12.5, "vref": 0.83}]
        out = sigma_metrics(per_sample, "obj", True, self.CONSTRAINTS)
        assert out["vref_mean"] == pytest.approx(0.82)
        assert out["g_mean"] == pytest.approx((-1e6 + 12.0 + 12.5) / 3)


# ---------------------------------------------------------------------- #
# runner (synthetic problem: fast, analytic yield)                        #
# ---------------------------------------------------------------------- #
class _FakeMismatchProblem:
    """Runner-protocol stub: pass iff margin + vth_z of device 'DA' >= 0."""

    constraints = [Constraint("m", 0.0, "ge")]

    def __init__(self, margin: float, crash_indices=()):
        self.margin = float(margin)
        self.crash_indices = set(crash_indices)
        self.technology = get_technology("180nm")
        self.n_simulated = 0

    def mismatch_device_names(self):
        return ("DA", "DB")

    def failed_metrics(self):
        return {"m": -1e6}

    def with_variation(self, sample):
        import copy
        clone = copy.copy(self)
        clone.sample = sample
        return clone

    def simulate(self, design):
        if self.sample.index in self.crash_indices:
            raise RuntimeError("boom")
        self.n_simulated += 1
        return {"m": self.margin + self.sample.devices[0].vth_z}


class TestRunner:
    def test_adaptive_stop_never_wider_than_target(self):
        # The acceptance guarantee: whenever the runner reports a ci_target
        # stop, the reported interval half-width is at or below the target.
        for margin in (-3.0, 0.0, 0.4, 3.0):
            for target in (0.02, 0.05, 0.1):
                config = MonteCarloConfig(n_max=512, n_min=16, batch_size=16,
                                          seed=5, ci_half_width=target)
                result = MonteCarloRunner(config).run(
                    _FakeMismatchProblem(margin), {})
                if result.stopped_by == "ci_target":
                    assert result.estimate.half_width <= target
                else:
                    assert result.n_samples == config.n_max

    def test_adaptive_stopping_saves_samples_on_easy_designs(self):
        config = MonteCarloConfig(n_max=512, n_min=32, batch_size=32, seed=5)
        easy = MonteCarloRunner(config).run(_FakeMismatchProblem(4.0), {})
        marginal = MonteCarloRunner(config).run(_FakeMismatchProblem(0.0), {})
        assert easy.stopped_by == "ci_target"
        assert easy.n_samples <= 64            # pinned near yield 1 quickly
        assert marginal.n_samples > 4 * easy.n_samples

    def test_n_min_respected_before_stopping(self):
        config = MonteCarloConfig(n_max=64, n_min=48, batch_size=8, seed=5,
                                  ci_half_width=0.49)
        result = MonteCarloRunner(config).run(_FakeMismatchProblem(5.0), {})
        assert result.n_samples >= 48

    def test_ci_target_none_runs_full_budget(self):
        config = MonteCarloConfig(n_max=40, n_min=8, batch_size=16, seed=1,
                                  ci_half_width=None)
        result = MonteCarloRunner(config).run(_FakeMismatchProblem(4.0), {})
        assert result.stopped_by == "n_max" and result.n_samples == 40

    def test_crashing_samples_are_isolated_failures(self):
        config = MonteCarloConfig(n_max=16, n_min=16, batch_size=8, seed=2,
                                  ci_half_width=None)
        result = MonteCarloRunner(config).run(
            _FakeMismatchProblem(9.0, crash_indices={3, 7}), {})
        assert result.n_failures == 2
        assert result.estimate.n_pass == 14
        assert result.per_sample[3] == {"m": -1e6}

    def test_results_carry_aligned_samples_and_fingerprints(self):
        config = MonteCarloConfig(n_max=8, n_min=8, batch_size=4, seed=3,
                                  ci_half_width=None)
        problem = _FakeMismatchProblem(0.0)
        result = MonteCarloRunner(config).run(problem, {})
        assert [s.index for s in result.samples] == list(range(8))
        assert len(set(result.fingerprints)) == 8
        expected = problem.technology.with_variation(
            result.samples[0]).fingerprint
        assert result.fingerprints[0] == expected

    def test_config_validation(self):
        with pytest.raises(ValueError, match="n_min"):
            MonteCarloConfig(n_max=8, n_min=9)
        with pytest.raises(ValueError, match="sampler"):
            MonteCarloConfig(sampler="gaussian")
        with pytest.raises(ValueError, match="ci_half_width"):
            MonteCarloConfig(ci_half_width=0.7)
        with pytest.raises(ValueError, match="unknown Monte Carlo config"):
            MonteCarloConfig.from_dict({"n_samples": 8})
        roundtrip = MonteCarloConfig.from_dict(
            MonteCarloConfig(n_max=12, n_min=4).to_dict())
        assert roundtrip.n_max == 12

    def test_classify_pass_requires_finite_satisfaction(self):
        constraints = [Constraint("g", 1.0, "ge")]
        assert classify_pass({"g": 2.0}, constraints)
        assert not classify_pass({"g": 0.5}, constraints)
        assert not classify_pass({"g": float("nan")}, constraints)


# ---------------------------------------------------------------------- #
# pool lifecycle                                                          #
# ---------------------------------------------------------------------- #
class TestPoolLifecycle:
    def test_runner_context_manager_closes_pool(self):
        with MonteCarloRunner(MonteCarloConfig(n_max=4, n_min=4, batch_size=4),
                              backend="thread") as runner:
            runner.backend.map(abs, [1, -2])
            assert runner._backend is not None
        assert runner._backend is None

    def test_leaked_runner_pool_warns_loudly(self):
        runner = MonteCarloRunner(backend="thread")
        runner.backend.map(abs, [1, -2])
        with pytest.warns(ResourceWarning, match="live 'thread' worker pool"):
            runner.__del__()
        runner.close()

    def test_serial_and_injected_backends_never_warn(self):
        serial = MonteCarloRunner(backend="serial")
        serial.backend.map(abs, [1])
        injected = MonteCarloRunner(backend=SerialBackend())
        injected.backend.map(abs, [1])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            serial.__del__()
            injected.__del__()
        gc.collect()

    def test_close_does_not_shut_down_injected_shared_pool(self):
        # A caller-provided backend is the documented way to *share* one
        # pool between consumers: closing the runner must release only its
        # reference, never the pool out from under the other users.
        from repro.engine.backends import ThreadBackend
        shared = ThreadBackend(max_workers=2)
        try:
            runner = MonteCarloRunner(backend=shared)
            runner.backend.map(abs, [1, -2])
            runner.close()
            assert runner._backend is None
            assert shared.map(abs, [-5]) == [5]   # pool still alive
        finally:
            shared.shutdown()

    def test_problem_is_context_manager(self):
        with make_problem("two_stage_opamp_yield",
                          mc={"n_max": 4, "n_min": 4}) as problem:
            assert problem._runner is not None
        # close() is idempotent and already ran via __exit__.
        problem.close()


# ---------------------------------------------------------------------- #
# yield problems end to end                                               #
# ---------------------------------------------------------------------- #
#: Marginal two-stage point: small minimum-length devices and a first-stage
#: bias that parks the mean gain right on the 60 dB spec, so the mismatch
#: yield is ~0.5 -- strictly between 0 and 1, and the cross-backend
#: comparison cannot pass degenerately.
MARGINAL_TWO_STAGE = dict(w_diff=2.0e-6, l_diff=0.18e-6, w_load=2.0e-6,
                          l_load=0.18e-6, w_out=20e-6, l_out=0.18e-6,
                          c_comp=0.8e-12, r_zero=3e3,
                          i_bias1=52e-6, i_bias2=150e-6)


class TestYieldProblems:
    def test_registered_and_listed(self):
        from repro.circuits import available_problems
        for name in ("two_stage_opamp_yield", "bandgap_yield",
                     "three_stage_opamp_yield"):
            assert name in available_problems()

    def test_good_design_metrics_and_adaptive_cost(self):
        with make_problem("two_stage_opamp_yield",
                          mc={"n_max": 256, "n_min": 24, "batch_size": 24,
                              "seed": 3}) as problem:
            metrics = problem.simulate(GOOD_TWO_STAGE)
        assert metrics["yield"] == 1.0
        assert metrics["yield_ci_low"] > 0.85
        # Adaptive stopping: a deeply feasible design costs ~n_min samples.
        assert metrics["mc_samples"] <= 72
        for name in ("gain", "pm", "gbw", "i_total"):
            assert {f"{name}_mean", f"{name}_std", f"{name}_p99"} <= set(metrics)
        assert metrics["gain_std"] < 1.0   # a matched good design is tight

    def test_dead_nominal_design_skips_monte_carlo(self):
        with make_problem("two_stage_opamp_yield",
                          mc={"n_max": 64, "n_min": 64}) as problem:
            dead = dict(GOOD_TWO_STAGE, i_bias1=1e-6, i_bias2=2e-6,
                        w_diff=2e-6, w_out=4e-6, l_out=2e-6)
            _, ok = problem.base_problem.simulate_checked(dead)
            if ok:
                pytest.skip("design unexpectedly alive; pick a deader one")
            metrics = problem.simulate(dead)
        assert metrics["yield"] == 0.0 and metrics["mc_samples"] == 0.0
        # Every metric key is a finite float (surrogate-trainable).
        assert all(np.isfinite(v) for v in metrics.values())

    @pytest.mark.parametrize("n_samples", [256])
    def test_yield_bit_identical_across_backends(self, n_samples):
        # Acceptance criterion: a 256-sample yield estimate is bit-identical
        # across serial, thread and process backends for a fixed seed --
        # metrics, per-sample draws and per-sample cache fingerprints.
        mc = {"n_max": n_samples, "n_min": 32, "batch_size": 64, "seed": 11,
              "ci_half_width": None}
        results = {}
        for backend in ("serial", "thread", "process"):
            with make_problem("two_stage_opamp_yield", mc=mc,
                              backend=backend, max_workers=4) as problem:
                metrics = problem.simulate(MARGINAL_TWO_STAGE)
                run = problem._runner.run(
                    problem.base_problem, MARGINAL_TWO_STAGE,
                    device_names=problem.mismatch_device_names())
            results[backend] = (metrics, run.fingerprints, run.samples)
        serial = results["serial"]
        assert 0.0 < serial[0]["yield"] < 1.0
        assert serial[0]["mc_samples"] == n_samples
        for backend in ("thread", "process"):
            assert results[backend][0] == serial[0], backend
            assert results[backend][1] == serial[1], backend
            assert results[backend][2] == serial[2], backend

    def test_cache_token_tracks_mc_configuration(self):
        tokens = set()
        for options in ({"mc": {"seed": 0}}, {"mc": {"seed": 1}},
                        {"mc": {"n_max": 128}}, {"yield_target": 0.8},
                        {"mc": {"sampler": "sobol"}},
                        # Confidence shapes yield_ci_low/high even with
                        # adaptive stopping disabled: it must split tokens.
                        {"mc": {"ci_half_width": None}},
                        {"mc": {"ci_half_width": None, "confidence": 0.99}}):
            with make_problem("two_stage_opamp_yield", **options) as problem:
                tokens.add(problem.cache_token)
                assert problem.cache_token.startswith(
                    "two_stage_opamp_yield_180nm:")
        assert len(tokens) == 7

    def test_yield_constraint_enters_problem(self):
        with make_problem("two_stage_opamp_yield",
                          yield_target=0.95) as problem:
            names = [c.name for c in problem.constraints]
            assert names == ["gain", "pm", "gbw", "yield"]
            assert problem.constraints[-1].threshold == 0.95
        with pytest.raises(ValueError, match="yield_target"):
            make_problem("two_stage_opamp_yield", yield_target=1.5)

    def test_runner_rejects_yield_wrapper_problems(self):
        # Running the runner on a yield problem would silently ignore every
        # sample (delegation to the un-varied base) while nesting a full MC
        # run inside each one -- both entry points fail loudly instead.
        with make_problem("two_stage_opamp_yield",
                          mc={"n_max": 4, "n_min": 4}) as problem:
            runner = MonteCarloRunner(MonteCarloConfig(n_max=4, n_min=4))
            with pytest.raises(ValueError, match="base_problem"):
                runner.run(problem, GOOD_TWO_STAGE)
            with pytest.raises(NotImplementedError, match="base_problem"):
                problem.with_variation(None)
            runner.close()

    def test_sampler_choice_changes_estimates_deterministically(self):
        mc = {"n_max": 32, "n_min": 32, "batch_size": 32, "seed": 7,
              "ci_half_width": None}
        runs = {}
        for sampler in ("normal", "sobol"):
            with make_problem("two_stage_opamp_yield",
                              mc=dict(mc, sampler=sampler)) as problem:
                runs[sampler] = problem.simulate(MARGINAL_TWO_STAGE)
                repeat = make_problem("two_stage_opamp_yield",
                                      mc=dict(mc, sampler=sampler))
                assert repeat.simulate(MARGINAL_TWO_STAGE) == runs[sampler]
                repeat.close()
        assert runs["normal"] != runs["sobol"]
