"""Tests for the device noise contract and the adjoint noise analysis."""

import numpy as np
import pytest

from repro.bench import (
    BatchSimulator,
    NoiseSpec,
    OPSpec,
    Simulator,
    Testbench,
    input_noise_nv_rthz,
    integrated_noise_uvrms,
    output_noise_nv_rthz,
)
from repro.pdk import NoiseCard, get_technology
from repro.spice import (
    Capacitor,
    Circuit,
    CurrentSource,
    Diode,
    Mosfet,
    MosfetModel,
    Resistor,
    VoltageSource,
    dc_operating_point,
    noise_analysis,
)
from repro.spice.devices.base import NoiseSource

K_BOLTZMANN = 1.380649e-23
Q_ELECTRON = 1.602176634e-19

NMOS = MosfetModel("nmos", vth0=0.45, kp=300e-6, lambda_per_um=0.08,
                   cox=8.5e-3, cgdo=3e-10,
                   noise=NoiseCard(gamma=2.0 / 3.0, kf=1e-30, af=1.0))


def _rc_circuit(resistance=1e3, capacitance=1e-9, ac=1.0):
    circuit = Circuit("rc")
    circuit.add(VoltageSource("VIN", "in", "0", dc=0.0, ac=ac))
    circuit.add(Resistor("R1", "in", "out", resistance))
    circuit.add(Capacitor("C1", "out", "0", capacitance))
    return circuit


class TestNoiseSource:
    def test_psd_white_plus_flicker(self):
        source = NoiseSource("D", "ch", 0, 1, white=2e-18, flicker=1e-15)
        freqs = np.array([1.0, 10.0, 1e3, 1e9])
        np.testing.assert_allclose(source.psd(freqs), 2e-18 + 1e-15 / freqs)

    def test_flicker_exponent(self):
        source = NoiseSource("D", "ch", 0, 1, white=0.0, flicker=1e-15,
                             flicker_exponent=2.0)
        np.testing.assert_allclose(source.psd(np.array([10.0])), 1e-17)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            NoiseSource("D", "ch", 0, 1, white=-1e-18)
        with pytest.raises(ValueError):
            NoiseSource("D", "ch", 0, 1, white=0.0, flicker=-1.0)


class TestDeviceNoiseModels:
    def test_resistor_thermal(self):
        circuit = _rc_circuit(resistance=2e3)
        op = dc_operating_point(circuit)
        (source,) = circuit.device("R1").noise_sources(op)
        t_kelvin = op.temperature + 273.15
        assert source.white == pytest.approx(4 * K_BOLTZMANN * t_kelvin / 2e3)
        assert source.flicker == 0.0

    def test_mosfet_channel_thermal_and_flicker(self):
        circuit = Circuit("mos")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        circuit.add(VoltageSource("VG", "g", "0", dc=1.0))
        circuit.add(Mosfet("M1", "vdd", "g", "0", "0", NMOS, 10e-6, 1e-6))
        op = dc_operating_point(circuit)
        info = op.device_info["M1"]
        (source,) = circuit.device("M1").noise_sources(op)
        t_kelvin = op.temperature + 273.15
        expected_white = 4 * K_BOLTZMANN * t_kelvin * (2.0 / 3.0) * abs(info["gm"])
        expected_flicker = 1e-30 * abs(info["ids"]) / (8.5e-3 * 10e-6 * 1e-6)
        assert source.white == pytest.approx(expected_white, rel=1e-12)
        assert source.flicker == pytest.approx(expected_flicker, rel=1e-12)

    def test_mosfet_without_flicker_card(self):
        quiet = MosfetModel("nmos", vth0=0.45, kp=300e-6, lambda_per_um=0.08,
                            cox=8.5e-3, cgdo=3e-10)
        circuit = Circuit("mos")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        circuit.add(VoltageSource("VG", "g", "0", dc=1.0))
        circuit.add(Mosfet("M1", "vdd", "g", "0", "0", quiet, 10e-6, 1e-6))
        op = dc_operating_point(circuit)
        (source,) = circuit.device("M1").noise_sources(op)
        assert source.flicker == 0.0

    def test_diode_shot(self):
        circuit = Circuit("diode")
        circuit.add(VoltageSource("VIN", "in", "0", dc=1.0))
        circuit.add(Resistor("R1", "in", "d", 1e3))
        circuit.add(Diode("D1", "d", "0"))
        op = dc_operating_point(circuit)
        (source,) = circuit.device("D1").noise_sources(op)
        i_d = abs(op.device_info["D1"]["i"])
        assert i_d > 0.0
        assert source.white == pytest.approx(2 * Q_ELECTRON * i_d, rel=1e-12)

    def test_sources_and_capacitors_are_noiseless(self):
        circuit = _rc_circuit()
        op = dc_operating_point(circuit)
        assert circuit.device("VIN").noise_sources(op) == []
        assert circuit.device("C1").noise_sources(op) == []


class TestNoiseCard:
    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseCard(gamma=-1.0)
        with pytest.raises(ValueError):
            NoiseCard(kf=-1e-30)

    def test_technology_accessor_and_fingerprint(self):
        tech = get_technology("180nm")
        assert tech.noise_card("nmos") is tech.nmos.noise
        assert tech.noise_card("pmos") is tech.pmos.noise
        with pytest.raises(ValueError):
            tech.noise_card("njfet")
        # Noise parameters are part of the device card, hence of the
        # technology fingerprint: different KF must never share caches.
        from dataclasses import replace
        louder = replace(tech.nmos,
                         noise=NoiseCard(gamma=2.0 / 3.0, kf=1e-28, af=1.0))
        assert replace(tech, nmos=louder).fingerprint != tech.fingerprint

    def test_corner_cards_keep_noise(self):
        tech = get_technology("180nm")
        cornered = tech.with_corner(nmos_kp_scale=0.9, nmos_vth_shift=0.03,
                                    pmos_kp_scale=0.9, pmos_vth_shift=0.03,
                                    corner="ss")
        assert cornered.nmos.noise == tech.nmos.noise
        assert cornered.pmos.noise == tech.pmos.noise


class TestNoiseAnalysis:
    FREQS = np.logspace(0, 9, 46)

    def test_validation(self):
        circuit = _rc_circuit()
        op = dc_operating_point(circuit)
        with pytest.raises(ValueError):
            noise_analysis(circuit, op, self.FREQS, output="out",
                           method="magic")
        with pytest.raises(ValueError):
            noise_analysis(circuit, op, np.array([0.0, 1.0]), output="out")
        with pytest.raises(ValueError):
            noise_analysis(circuit, op, self.FREQS, output="0")

    def test_vectorized_matches_per_frequency_exactly(self):
        circuit = _rc_circuit()
        op = dc_operating_point(circuit)
        fast = noise_analysis(circuit, op, self.FREQS, output="out",
                              method="vectorized")
        slow = noise_analysis(circuit, op, self.FREQS, output="out",
                              method="per_frequency")
        np.testing.assert_allclose(fast.output_psd, slow.output_psd,
                                   rtol=1e-12)
        np.testing.assert_allclose(fast.gain, slow.gain, rtol=1e-12)
        for key in fast.source_transfers:
            np.testing.assert_allclose(fast.source_transfers[key],
                                       slow.source_transfers[key], rtol=1e-12)

    def test_input_referral_divides_by_gain(self):
        circuit = _rc_circuit()
        op = dc_operating_point(circuit)
        result = noise_analysis(circuit, op, self.FREQS, output="out")
        np.testing.assert_allclose(
            result.input_psd, result.output_psd / np.abs(result.gain) ** 2,
            rtol=1e-12)
        # The RC forward gain is the low-pass response itself.
        expected = 1.0 / (1.0 + 2j * np.pi * self.FREQS * 1e3 * 1e-9)
        np.testing.assert_allclose(result.gain, expected, rtol=1e-6)

    def test_unexcited_circuit_has_no_input_referred_noise(self):
        circuit = _rc_circuit(ac=0.0)
        op = dc_operating_point(circuit)
        result = noise_analysis(circuit, op, self.FREQS, output="out")
        assert result.gain is None and result.input_psd is None
        with pytest.raises(ValueError):
            result.input_density(1e3)
        with pytest.raises(ValueError):
            result.integrated_input_noise()
        # Output-referred quantities remain well-defined.
        assert result.integrated_output_noise() > 0.0

    def test_contribution_fractions_sum_to_one(self):
        circuit = Circuit("divider")
        circuit.add(VoltageSource("VIN", "in", "0", dc=0.0, ac=1.0))
        circuit.add(Resistor("R1", "in", "out", 1e3))
        circuit.add(Resistor("R2", "out", "0", 3e3))
        op = dc_operating_point(circuit)
        result = noise_analysis(circuit, op, self.FREQS, output="out")
        fractions = result.contribution_fractions()
        assert set(fractions) == {"R1", "R2"}
        assert sum(fractions.values()) == pytest.approx(1.0, rel=1e-12)

    def test_integration_band_needs_two_points(self):
        circuit = _rc_circuit()
        op = dc_operating_point(circuit)
        result = noise_analysis(circuit, op, self.FREQS, output="out")
        with pytest.raises(ValueError):
            result.integrated_output_noise(1e20, 1e21)


class TestNoiseBench:
    FREQS = np.logspace(0, 9, 91)

    def _bench(self):
        def build(design):
            return _rc_circuit(resistance=design["r"])
        return Testbench(
            name="rc_noise",
            builders=build,
            analyses=[OPSpec("op"),
                      NoiseSpec("noise", frequencies=self.FREQS,
                                output="out", op="op")],
            measures=[output_noise_nv_rthz(1e3, "noise"),
                      input_noise_nv_rthz(1e3, "noise"),
                      integrated_noise_uvrms("noise")])

    def test_simulator_runs_noise_spec(self):
        result = Simulator().run(self._bench(), {"r": 1e3})
        assert result.ok
        assert result.metrics["en_out"] > 0.0
        assert result.metrics["vnoise"] > 0.0
        # kT/C bound: the integrated output noise of an RC is sqrt(kT/C).
        expected_uv = np.sqrt(K_BOLTZMANN * 300.15 / 1e-9) * 1e6
        assert result.metrics["vnoise"] == pytest.approx(expected_uv, rel=0.01)

    def test_batch_matches_serial_bit_identically(self):
        bench = self._bench()
        designs = [{"r": 1e3}, {"r": 47e3}, {"r": 220.0}]
        serial = [Simulator().run(bench, d) for d in designs]
        batched = BatchSimulator().run([(bench, d) for d in designs])
        for s, b in zip(serial, batched):
            assert b.ok and s.metrics == b.metrics

    def test_batch_rejects_mismatched_noise_grids(self):
        def build(design):
            return _rc_circuit(resistance=design["r"])
        def bench_with(freqs):
            return Testbench(
                name="rc_noise", builders=build,
                analyses=[OPSpec("op"),
                          NoiseSpec("noise", frequencies=freqs,
                                    output="out", op="op")],
                measures=[output_noise_nv_rthz(1e3, "noise")])
        jobs = [(bench_with(self.FREQS), {"r": 1e3}),
                (bench_with(self.FREQS[::2]), {"r": 1e3})]
        with pytest.raises(ValueError):
            BatchSimulator().run(jobs)
