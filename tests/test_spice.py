"""Tests for the SPICE-like simulator: devices, DC, AC and sweeps."""

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.spice import (
    VCCS,
    VCVS,
    Capacitor,
    Circuit,
    CurrentSource,
    Diode,
    Mosfet,
    MosfetModel,
    Resistor,
    VoltageSource,
    ac_analysis,
    dc_operating_point,
    dc_sweep,
    temperature_sweep,
)
from repro.spice.ac import logspace_frequencies
from repro.spice.devices.mosfet import square_law
from repro.spice.sweep import temperature_coefficient_ppm

NMOS = MosfetModel("nmos", vth0=0.45, kp=300e-6, lambda_per_um=0.08,
                   cox=8.5e-3, cgdo=3e-10)
PMOS = MosfetModel("pmos", vth0=0.45, kp=100e-6, lambda_per_um=0.10,
                   cox=8.5e-3, cgdo=3e-10)


class TestNetlist:
    def test_node_bookkeeping(self):
        circuit = Circuit()
        circuit.add(Resistor("R1", "a", "b", 1e3))
        circuit.add(Resistor("R2", "b", "gnd", 1e3))
        assert circuit.n_nodes == 2
        assert circuit.node_index("gnd") == -1
        assert circuit.node_index("a") != circuit.node_index("b")

    def test_ground_aliases(self):
        for alias in ("0", "gnd", "vss", "GND"):
            assert Circuit.canonical_node(alias) == "0"

    def test_duplicate_device_rejected(self):
        circuit = Circuit()
        circuit.add(Resistor("R1", "a", "0", 1e3))
        with pytest.raises(NetlistError):
            circuit.add(Resistor("R1", "b", "0", 1e3))

    def test_unknown_node_raises(self):
        circuit = Circuit()
        circuit.add(Resistor("R1", "a", "0", 1e3))
        with pytest.raises(NetlistError):
            circuit.node_index("zz")

    def test_device_lookup(self):
        circuit = Circuit()
        resistor = circuit.add(Resistor("R1", "a", "0", 1e3))
        assert circuit.device("R1") is resistor
        with pytest.raises(NetlistError):
            circuit.device("R2")

    def test_summary_counts(self):
        circuit = Circuit()
        circuit.add(Resistor("R1", "a", "0", 1e3))
        circuit.add(VoltageSource("V1", "a", "0", dc=1.0))
        summary = circuit.summary()
        assert summary["n_devices"] == 2
        assert summary["n_branches"] == 1

    def test_invalid_component_values(self):
        with pytest.raises(ValueError):
            Resistor("R", "a", "0", -5.0)
        with pytest.raises(ValueError):
            Capacitor("C", "a", "0", 0.0)
        with pytest.raises(ValueError):
            Mosfet("M", "d", "g", "s", "b", NMOS, width=-1e-6, length=1e-6)
        with pytest.raises(ValueError):
            Diode("D", "a", "0", saturation_current=-1.0)
        with pytest.raises(ValueError):
            MosfetModel("xmos", 0.4, 1e-4, 0.1, 8e-3, 1e-10)


class TestDCAnalysis:
    def test_voltage_divider(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0", dc=10.0))
        circuit.add(Resistor("R1", "in", "mid", 1e3))
        circuit.add(Resistor("R2", "mid", "0", 3e3))
        op = dc_operating_point(circuit)
        assert op.converged
        assert op.voltage("mid") == pytest.approx(7.5, rel=1e-6)

    def test_current_source_into_resistor(self):
        circuit = Circuit()
        circuit.add(CurrentSource("I1", "0", "n", dc=1e-3))
        circuit.add(Resistor("R1", "n", "0", 2e3))
        op = dc_operating_point(circuit)
        assert op.voltage("n") == pytest.approx(2.0, rel=1e-5)

    def test_vcvs_gain(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0", dc=0.5))
        circuit.add(VCVS("E1", "out", "0", "in", "0", mu=10.0))
        circuit.add(Resistor("RL", "out", "0", 1e3))
        op = dc_operating_point(circuit)
        assert op.voltage("out") == pytest.approx(5.0, rel=1e-6)

    def test_vccs_output_current(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0", dc=1.0))
        circuit.add(VCCS("G1", "out", "0", "in", "0", gm=1e-3))
        circuit.add(Resistor("RL", "out", "0", 1e3))
        op = dc_operating_point(circuit)
        assert abs(op.voltage("out")) == pytest.approx(1.0, rel=1e-6)

    def test_diode_forward_drop(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "vdd", "0", dc=3.0))
        circuit.add(Resistor("R1", "vdd", "d", 1e3))
        circuit.add(Diode("D1", "d", "0"))
        op = dc_operating_point(circuit)
        assert op.converged
        assert 0.5 < op.voltage("d") < 0.85

    def test_voltage_source_branch_current(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0", dc=10.0))
        circuit.add(Resistor("R1", "in", "0", 1e3))
        op = dc_operating_point(circuit)
        current = circuit.device("V1").branch_current(op.voltages)
        assert abs(current) == pytest.approx(10e-3, rel=1e-5)

    def test_nmos_saturation_current(self):
        circuit = Circuit()
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        circuit.add(VoltageSource("VG", "g", "0", dc=0.8))
        circuit.add(Resistor("RD", "vdd", "d", 1e3))
        circuit.add(Mosfet("M1", "d", "g", "0", "0", NMOS, width=10e-6, length=1e-6))
        op = dc_operating_point(circuit)
        info = op.device_info["M1"]
        expected = 0.5 * 300e-6 * 10 * (0.8 - 0.45) ** 2
        assert info["ids"] == pytest.approx(expected, rel=0.15)
        assert info["region"] == "saturation"

    def test_warm_start_initial_guess(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0", dc=1.0))
        circuit.add(Resistor("R1", "in", "0", 1e3))
        first = dc_operating_point(circuit)
        second = dc_operating_point(circuit, initial_guess=first.voltages)
        assert second.converged

    def test_bad_initial_guess_length(self):
        circuit = Circuit()
        circuit.add(Resistor("R1", "a", "0", 1e3))
        with pytest.raises(ValueError):
            dc_operating_point(circuit, initial_guess=np.zeros(5))


class TestMosfetModel:
    def test_square_law_regions(self):
        cutoff = square_law(NMOS, 1e-5, 1e-6, vgs=0.2, vds=1.0)
        assert cutoff.region == "cutoff" and cutoff.ids < 1e-9
        triode = square_law(NMOS, 1e-5, 1e-6, vgs=1.5, vds=0.1)
        assert triode.region == "triode"
        saturation = square_law(NMOS, 1e-5, 1e-6, vgs=0.8, vds=1.5)
        assert saturation.region == "saturation"

    def test_gm_increases_with_overdrive(self):
        low = square_law(NMOS, 1e-5, 1e-6, vgs=0.6, vds=1.0)
        high = square_law(NMOS, 1e-5, 1e-6, vgs=1.0, vds=1.0)
        assert high.gm > low.gm

    def test_channel_length_modulation(self):
        short = NMOS.effective_lambda(0.18e-6)
        long = NMOS.effective_lambda(1.8e-6)
        assert short > long

    def test_threshold_temperature_dependence(self):
        assert NMOS.vth_at(100.0) < NMOS.vth_at(27.0)

    def test_kp_decreases_with_temperature(self):
        assert NMOS.kp_at(100.0) < NMOS.kp_at(27.0)

    def test_polarity_sign(self):
        assert NMOS.sign == 1.0 and PMOS.sign == -1.0

    def test_pmos_conducts_with_negative_vgs(self):
        circuit = Circuit()
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        circuit.add(VoltageSource("VG", "g", "0", dc=0.9))
        circuit.add(Resistor("RD", "d", "0", 1e3))
        circuit.add(Mosfet("MP", "d", "g", "vdd", "vdd", PMOS, width=20e-6, length=1e-6))
        op = dc_operating_point(circuit)
        assert op.voltage("d") > 0.1  # PMOS pulls the output up through RD


class TestACAnalysis:
    def _rc_circuit(self):
        circuit = Circuit()
        circuit.add(VoltageSource("Vin", "in", "0", dc=0.0, ac=1.0))
        circuit.add(Resistor("R", "in", "out", 1e3))
        circuit.add(Capacitor("C", "out", "0", 1e-6))
        return circuit

    def test_rc_corner_frequency(self):
        circuit = self._rc_circuit()
        op = dc_operating_point(circuit)
        result = ac_analysis(circuit, op, logspace_frequencies(1, 1e6, 30), observe=["out"])
        corner = result.bandwidth_3db("out")
        assert corner == pytest.approx(1.0 / (2 * np.pi * 1e3 * 1e-6), rel=0.05)

    def test_rc_low_frequency_gain_is_unity(self):
        circuit = self._rc_circuit()
        op = dc_operating_point(circuit)
        result = ac_analysis(circuit, op, observe=["out"])
        assert result.dc_gain_db("out") == pytest.approx(0.0, abs=0.1)

    def test_common_source_gain_matches_analytic(self):
        circuit = Circuit()
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        circuit.add(VoltageSource("VG", "g", "0", dc=0.7, ac=1.0))
        circuit.add(Resistor("RL", "vdd", "d", 20e3))
        circuit.add(Mosfet("M1", "d", "g", "0", "0", NMOS, width=10e-6, length=1e-6))
        op = dc_operating_point(circuit)
        result = ac_analysis(circuit, op, logspace_frequencies(10, 1e6, 10), observe=["d"])
        info = op.device_info["M1"]
        expected = 20 * np.log10(info["gm"] / (1 / 20e3 + info["gds"]))
        assert result.dc_gain_db("d") == pytest.approx(expected, abs=0.2)

    def test_unity_gain_frequency_of_integrator_like_circuit(self):
        circuit = Circuit()
        circuit.add(VoltageSource("Vin", "in", "0", ac=1.0))
        circuit.add(VCCS("G1", "0", "out", "in", "0", gm=1e-3))
        circuit.add(Resistor("Ro", "out", "0", 1e6))
        circuit.add(Capacitor("Co", "out", "0", 1e-9))
        op = dc_operating_point(circuit)
        result = ac_analysis(circuit, op, logspace_frequencies(1, 1e9, 20), observe=["out"])
        assert result.unity_gain_frequency("out") == pytest.approx(
            1e-3 / (2 * np.pi * 1e-9), rel=0.1)
        margin = result.phase_margin_degrees("out")
        assert 80.0 < margin < 100.0

    def test_no_unity_crossing_reports_zero(self):
        circuit = self._rc_circuit()
        circuit.device("Vin").ac = 0.1  # attenuated: response never reaches 0 dB
        op = dc_operating_point(circuit)
        result = ac_analysis(circuit, op, observe=["out"])
        assert result.unity_gain_frequency("out") == 0.0
        assert result.phase_margin_degrees("out") == 0.0

    def test_above_unity_through_sweep_clamps_to_last_frequency(self):
        # The other no-crossing branch: a sweep ending while the gain is
        # still above 0 dB clamps to the final analysed frequency (a
        # conservative lower bound on the true GBW), unlike the dead-output
        # case above which reports 0.
        circuit = Circuit()
        circuit.add(VoltageSource("Vin", "in", "0", ac=1.0))
        circuit.add(VCCS("G1", "0", "out", "in", "0", gm=1e-3))
        circuit.add(Resistor("Ro", "out", "0", 1e6))
        circuit.add(Capacitor("Co", "out", "0", 1e-9))
        op = dc_operating_point(circuit)
        frequencies = logspace_frequencies(1, 1e3, 10)  # crossing ~159 kHz
        result = ac_analysis(circuit, op, frequencies, observe=["out"])
        assert np.all(result.magnitude_db("out") > 0.0)
        assert result.unity_gain_frequency("out") == float(frequencies[-1])
        assert result.phase_margin_degrees("out") > 0.0

    def test_gain_at_interpolation(self):
        circuit = self._rc_circuit()
        op = dc_operating_point(circuit)
        result = ac_analysis(circuit, op, logspace_frequencies(1, 1e6, 20), observe=["out"])
        assert result.gain_at("out", 159.0) == pytest.approx(-3.0, abs=0.5)


class TestSweeps:
    def test_dc_sweep_linear_circuit(self):
        circuit = Circuit()
        source = circuit.add(VoltageSource("V1", "in", "0", dc=0.0))
        circuit.add(Resistor("R1", "in", "mid", 1e3))
        circuit.add(Resistor("R2", "mid", "0", 1e3))

        values, observed = dc_sweep(circuit, "V1", "dc",
                                    np.linspace(0, 2, 5), observe="mid")
        assert np.allclose(observed, values / 2.0, atol=1e-9)
        # The sweep restores the swept attribute when it finishes.
        assert source.dc == 0.0

    def test_dc_sweep_deprecated_callback_form(self):
        circuit = Circuit()
        source = circuit.add(VoltageSource("V1", "in", "0", dc=0.0))
        circuit.add(Resistor("R1", "in", "mid", 1e3))
        circuit.add(Resistor("R2", "mid", "0", 1e3))
        with pytest.warns(DeprecationWarning, match="dc_sweep"):
            values, observed = dc_sweep(
                circuit, lambda v: setattr(source, "dc", v),
                np.linspace(0, 2, 5), observe="mid")
        assert np.allclose(observed, values / 2.0, atol=1e-9)
        # Documented legacy behaviour: the callback form cannot restore.
        assert source.dc == 2.0

    def test_temperature_sweep_diode_is_ctat(self):
        circuit = Circuit()
        circuit.add(CurrentSource("Ib", "0", "d", dc=10e-6))
        circuit.add(Diode("D1", "d", "0"))
        temperatures, voltages, points = temperature_sweep(
            circuit, np.array([-20.0, 27.0, 85.0]), observe="d")
        assert all(p.converged for p in points)
        assert voltages[0] > voltages[1] > voltages[2]  # VBE falls with temperature

    def test_temperature_coefficient_formula(self):
        temperatures = np.array([0.0, 50.0, 100.0])
        flat = temperature_coefficient_ppm(temperatures, np.array([1.0, 1.0, 1.0]))
        assert flat == pytest.approx(0.0)
        sloped = temperature_coefficient_ppm(temperatures, np.array([1.0, 1.005, 1.01]))
        assert sloped == pytest.approx(0.01 / 1.005 / 100.0 * 1e6, rel=1e-3)

    def test_temperature_coefficient_degenerate(self):
        assert np.isinf(temperature_coefficient_ppm(np.array([27.0]), np.array([0.0])))


class TestFiveTransistorOTA:
    def test_differential_gain_and_operating_regions(self):
        circuit = Circuit()
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=1.8))
        circuit.add(VoltageSource("Vip", "inp", "0", dc=0.9, ac=0.5))
        circuit.add(VoltageSource("Vin", "inn", "0", dc=0.9, ac=-0.5))
        circuit.add(CurrentSource("Itail", "tail", "0", dc=20e-6))
        circuit.add(Mosfet("M1", "o1", "inp", "tail", "0", NMOS, 20e-6, 1e-6))
        circuit.add(Mosfet("M2", "out", "inn", "tail", "0", NMOS, 20e-6, 1e-6))
        circuit.add(Mosfet("M3", "o1", "o1", "vdd", "vdd", PMOS, 20e-6, 1e-6))
        circuit.add(Mosfet("M4", "out", "o1", "vdd", "vdd", PMOS, 20e-6, 1e-6))
        circuit.add(Capacitor("CL", "out", "0", 1e-12))
        op = dc_operating_point(circuit)
        assert op.converged
        for name in ("M1", "M2", "M3", "M4"):
            assert op.device_info[name]["region"] == "saturation"
            assert op.device_info[name]["ids"] == pytest.approx(10e-6, rel=0.15)
        result = ac_analysis(circuit, op, logspace_frequencies(100, 1e9, 10),
                             observe=["out"])
        assert result.dc_gain_db("out") > 30.0
