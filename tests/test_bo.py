"""Tests for the BO engines: design space, problem, history and optimizers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bo import (
    Constraint,
    ConstrainedMACE,
    DesignSpace,
    DesignVariable,
    MACE,
    OptimizationHistory,
    RandomSearch,
    SMACRF,
    SingleObjectiveBO,
)
from repro.errors import DesignSpaceError, OptimizationError


class TestDesignVariable:
    def test_invalid_bounds(self):
        with pytest.raises(DesignSpaceError):
            DesignVariable("x", 1.0, 0.5)

    def test_log_scale_requires_positive(self):
        with pytest.raises(DesignSpaceError):
            DesignVariable("x", -1.0, 1.0, log_scale=True)

    def test_non_finite_bounds(self):
        with pytest.raises(DesignSpaceError):
            DesignVariable("x", 0.0, np.inf)


class TestDesignSpace:
    def _space(self):
        return DesignSpace([
            DesignVariable("w", 1e-6, 1e-4, log_scale=True, unit="m"),
            DesignVariable("i", 1e-6, 1e-3, log_scale=True, unit="A"),
            DesignVariable("ratio", 0.0, 10.0),
        ])

    def test_dim_names_bounds(self):
        space = self._space()
        assert space.dim == 3
        assert space.names == ["w", "i", "ratio"]
        assert space.bounds.shape == (3, 2)
        assert np.allclose(space.unit_bounds[:, 0], 0.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(DesignSpaceError):
            DesignSpace([DesignVariable("a", 0, 1), DesignVariable("a", 0, 1)])

    def test_empty_rejected(self):
        with pytest.raises(DesignSpaceError):
            DesignSpace([])

    def test_unit_roundtrip(self, rng):
        space = self._space()
        x = space.sample(20, rng=rng)
        recovered = space.from_unit(space.to_unit(x))
        assert np.allclose(recovered, x, rtol=1e-9)

    def test_log_scaling_midpoint_is_geometric_mean(self):
        space = self._space()
        mid = space.from_unit(np.full((1, 3), 0.5))[0]
        assert mid[0] == pytest.approx(np.sqrt(1e-6 * 1e-4), rel=1e-9)
        assert mid[2] == pytest.approx(5.0)

    def test_sample_within_bounds(self, rng):
        space = self._space()
        x = space.sample(50, rng=rng)
        bounds = space.bounds
        assert np.all(x >= bounds[:, 0]) and np.all(x <= bounds[:, 1])

    def test_latin_hypercube_stratified(self, rng):
        space = DesignSpace([DesignVariable("a", 0.0, 1.0)])
        x = space.latin_hypercube(10, rng=rng)[:, 0]
        counts, _ = np.histogram(x, bins=10, range=(0, 1))
        assert np.all(counts == 1)

    def test_clip(self):
        space = self._space()
        clipped = space.clip(np.array([[1.0, 1.0, 20.0]]))
        assert clipped[0, 2] == 10.0

    def test_dict_roundtrip(self):
        space = self._space()
        vector = np.array([2e-5, 5e-4, 3.0])
        assert np.allclose(space.from_dict(space.as_dict(vector)), vector)

    def test_from_dict_missing_key(self):
        with pytest.raises(DesignSpaceError):
            self._space().from_dict({"w": 1e-5})

    def test_index_of(self):
        space = self._space()
        assert space.index_of("i") == 1
        with pytest.raises(DesignSpaceError):
            space.index_of("nope")

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 50))
    def test_unit_transform_in_unit_cube(self, n):
        space = self._space()
        x = space.sample(n, rng=np.random.default_rng(n))
        unit = space.to_unit(x)
        assert np.all(unit >= 0.0) and np.all(unit <= 1.0)


class TestConstraintAndProblem:
    def test_constraint_senses(self):
        ge = Constraint("gain", 60.0, "ge")
        assert ge.satisfied(65.0) and not ge.satisfied(55.0)
        assert ge.violation(55.0) == pytest.approx(5.0)
        le = Constraint("current", 6.0, "le")
        assert le.satisfied(5.0) and not le.satisfied(7.0)
        assert le.violation(7.0) == pytest.approx(1.0)

    def test_invalid_sense(self):
        with pytest.raises(ValueError):
            Constraint("x", 0.0, "gt")

    def test_metric_names_order(self, constrained_problem):
        assert constrained_problem.metric_names == ["cost", "g1", "g2"]

    def test_evaluate_feasibility(self, constrained_problem):
        good = constrained_problem.evaluate(np.array([0.4, 0.4, 0.1]))
        assert good.feasible and good.violation == 0.0
        bad = constrained_problem.evaluate(np.array([0.0, 0.0, 0.0]))
        assert not bad.feasible and bad.violation > 0.0

    def test_evaluate_batch_and_matrix(self, constrained_problem, rng):
        designs = constrained_problem.design_space.sample(6, rng=rng)
        evaluations = constrained_problem.evaluate_batch(designs)
        matrix = constrained_problem.metrics_matrix(evaluations)
        assert matrix.shape == (6, 3)

    def test_is_better_direction(self, constrained_problem, quadratic_problem):
        assert constrained_problem.is_better(1.0, 2.0)       # minimisation
        assert quadratic_problem.is_better(2.0, 1.0)          # maximisation

    def test_simulate_missing_metric_raises(self, quadratic_problem):
        quadratic_problem.simulate = lambda design: {"wrong": 1.0}
        with pytest.raises(KeyError):
            quadratic_problem.evaluate(np.array([0.5, 0.5, 0.5]))


class TestHistory:
    def _filled_history(self, problem, rng, n=12):
        history = OptimizationHistory(problem)
        history.extend(problem.evaluate_batch(problem.design_space.sample(n, rng=rng)))
        return history

    def test_lengths_and_arrays(self, constrained_problem, rng):
        history = self._filled_history(constrained_problem, rng)
        assert len(history) == 12
        assert history.x.shape == (12, 3)
        assert history.objectives.shape == (12,)
        assert history.feasible.dtype == bool

    def test_best_curve_monotone(self, constrained_problem, rng):
        history = self._filled_history(constrained_problem, rng, n=20)
        curve = history.best_curve(constrained=True)
        finite = curve[np.isfinite(curve)]
        assert np.all(np.diff(finite) <= 1e-12)

    def test_best_is_feasible_when_possible(self, constrained_problem, rng):
        history = self._filled_history(constrained_problem, rng, n=30)
        best = history.best(constrained=True)
        if history.feasible.any():
            assert best.feasible

    def test_unconstrained_best(self, quadratic_problem, rng):
        history = OptimizationHistory(quadratic_problem)
        history.extend(quadratic_problem.evaluate_batch(
            quadratic_problem.design_space.sample(10, rng=rng)))
        assert history.best_objective(constrained=False) == history.objectives.max()

    def test_empty_history(self, quadratic_problem):
        history = OptimizationHistory(quadratic_problem)
        assert history.best_index() is None
        assert history.best_curve().size == 0
        assert np.isneginf(history.best_objective(constrained=False))

    def test_simulations_to_reach(self, quadratic_problem, rng):
        history = OptimizationHistory(quadratic_problem)
        history.extend(quadratic_problem.evaluate_batch(
            quadratic_problem.design_space.sample(15, rng=rng)))
        best = history.best_objective(constrained=False)
        needed = history.simulations_to_reach(best, constrained=False)
        assert 1 <= needed <= 15
        assert history.simulations_to_reach(best + 1.0, constrained=False) is None

    def test_summary_keys(self, constrained_problem, rng):
        history = self._filled_history(constrained_problem, rng)
        summary = history.summary()
        assert {"problem", "n_simulations", "n_feasible", "best_objective"} <= set(summary)


class TestOptimizers:
    def test_random_search_improves_with_budget(self, quadratic_problem):
        optimizer = RandomSearch(quadratic_problem, batch_size=5, rng=0)
        history = optimizer.optimize(n_simulations=40, n_init=5)
        assert len(history) >= 40
        assert history.best_objective(constrained=False) > -0.5

    def test_single_objective_bo_beats_initial(self, quadratic_problem):
        optimizer = SingleObjectiveBO(quadratic_problem, rng=0, surrogate_train_iters=15)
        history = optimizer.optimize(n_simulations=18, n_init=8)
        curve = history.best_curve(constrained=False)
        assert curve[-1] >= curve[7]
        assert curve[-1] > -0.15

    def test_smac_rf_runs(self, quadratic_problem):
        optimizer = SMACRF(quadratic_problem, batch_size=2, rng=0, n_candidates=128)
        history = optimizer.optimize(n_simulations=20, n_init=8)
        assert len(history) >= 20

    def test_mace_runs_and_improves(self, quadratic_problem):
        optimizer = MACE(quadratic_problem, batch_size=4, rng=0,
                         surrogate_train_iters=10, pop_size=16, n_generations=5)
        history = optimizer.optimize(n_simulations=24, n_init=8)
        assert history.best_objective(constrained=False) > -0.2

    def test_constrained_mace_variants(self, constrained_problem):
        for variant in ("modified", "full"):
            optimizer = ConstrainedMACE(constrained_problem, batch_size=4, rng=0,
                                        variant=variant, surrogate_train_iters=10,
                                        pop_size=16, n_generations=5)
            history = optimizer.optimize(n_simulations=24, n_init=12)
            assert len(history) >= 24
            best = history.best(constrained=True)
            assert best is not None

    def test_constrained_mace_rejects_unconstrained(self, quadratic_problem):
        with pytest.raises(OptimizationError):
            ConstrainedMACE(quadratic_problem)

    def test_constrained_mace_rejects_bad_variant(self, constrained_problem):
        with pytest.raises(OptimizationError):
            ConstrainedMACE(constrained_problem, variant="bogus")

    def test_step_before_initialize_raises(self, quadratic_problem):
        with pytest.raises(OptimizationError):
            RandomSearch(quadratic_problem).step()

    def test_batch_size_validation(self, quadratic_problem):
        with pytest.raises(OptimizationError):
            RandomSearch(quadratic_problem, batch_size=0)

    def test_initialize_with_explicit_designs(self, quadratic_problem):
        optimizer = RandomSearch(quadratic_problem, rng=0)
        designs = quadratic_problem.design_space.sample(4, rng=1)
        optimizer.initialize(n_init=4, initial_designs=designs)
        assert len(optimizer.history) == 4

    def test_callback_invoked(self, quadratic_problem):
        calls = []
        optimizer = RandomSearch(quadratic_problem, batch_size=2, rng=0)
        optimizer.optimize(n_simulations=8, n_init=4, callback=lambda h: calls.append(len(h)))
        assert calls and calls[-1] >= 8
