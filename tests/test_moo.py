"""Tests for Pareto utilities and NSGA-II."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.moo import (
    NSGA2,
    crowding_distance,
    fast_non_dominated_sort,
    hypervolume_2d,
    is_dominated,
    pareto_front_mask,
)


class TestDominance:
    def test_is_dominated_basic(self):
        assert is_dominated([2.0, 2.0], [1.0, 1.0])
        assert not is_dominated([1.0, 1.0], [2.0, 2.0])

    def test_equal_points_do_not_dominate(self):
        assert not is_dominated([1.0, 1.0], [1.0, 1.0])

    def test_partial_tradeoff(self):
        assert not is_dominated([1.0, 3.0], [2.0, 1.0])

    def test_pareto_front_mask_simple(self):
        objectives = np.array([[1.0, 4.0], [2.0, 2.0], [4.0, 1.0], [3.0, 3.0]])
        mask = pareto_front_mask(objectives)
        assert mask.tolist() == [True, True, True, False]

    def test_pareto_front_mask_duplicates(self):
        objectives = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        mask = pareto_front_mask(objectives)
        assert mask[0] and mask[1] and not mask[2]

    def test_fast_non_dominated_sort_fronts(self):
        objectives = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        fronts = fast_non_dominated_sort(objectives)
        assert [front.tolist() for front in fronts] == [[0], [1], [2]]

    def test_fast_sort_partitions_everything(self, rng):
        objectives = rng.normal(size=(30, 3))
        fronts = fast_non_dominated_sort(objectives)
        flattened = sorted(int(i) for front in fronts for i in front)
        assert flattened == list(range(30))

    def test_first_front_is_pareto_mask(self, rng):
        objectives = rng.normal(size=(25, 2))
        fronts = fast_non_dominated_sort(objectives)
        mask = pareto_front_mask(objectives)
        assert sorted(fronts[0].tolist()) == sorted(np.nonzero(mask)[0].tolist())


class TestCrowding:
    def test_boundary_points_infinite(self):
        objectives = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        distance = crowding_distance(objectives)
        assert np.isinf(distance[0]) and np.isinf(distance[3])
        assert np.isfinite(distance[1]) and np.isfinite(distance[2])

    def test_two_points_infinite(self):
        assert np.all(np.isinf(crowding_distance(np.array([[0.0, 1.0], [1.0, 0.0]]))))

    def test_constant_objective_no_nan(self):
        distance = crowding_distance(np.ones((5, 2)))
        assert not np.any(np.isnan(distance))


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume_2d([[0.0, 0.0]], [1.0, 1.0]) == pytest.approx(1.0)

    def test_two_points(self):
        volume = hypervolume_2d([[0.0, 0.5], [0.5, 0.0]], [1.0, 1.0])
        assert volume == pytest.approx(0.75)

    def test_points_outside_reference_ignored(self):
        assert hypervolume_2d([[2.0, 2.0]], [1.0, 1.0]) == 0.0

    def test_dominated_points_do_not_add(self):
        base = hypervolume_2d([[0.0, 0.0]], [1.0, 1.0])
        extra = hypervolume_2d([[0.0, 0.0], [0.5, 0.5]], [1.0, 1.0])
        assert extra == pytest.approx(base)


def _zdt1_like(x):
    """A simple bi-objective test problem on [0, 1]^d."""
    x = np.atleast_2d(x)
    f1 = x[:, 0]
    g = 1.0 + 9.0 * x[:, 1:].mean(axis=1)
    f2 = g * (1.0 - np.sqrt(np.clip(f1 / g, 0, 1)))
    return np.column_stack([f1, f2])


class TestNSGA2:
    def test_result_shapes(self, rng):
        nsga = NSGA2(pop_size=20, n_generations=5, rng=rng)
        result = nsga.minimize(_zdt1_like, np.array([[0.0, 1.0]] * 4))
        assert result.x.shape == (20, 4)
        assert result.objectives.shape == (20, 2)
        assert result.pareto_x.shape[0] >= 1
        assert result.n_generations == 5

    def test_respects_bounds(self, rng):
        nsga = NSGA2(pop_size=16, n_generations=5, rng=rng)
        bounds = np.array([[0.2, 0.4]] * 3)
        result = nsga.minimize(_zdt1_like, bounds)
        assert np.all(result.x >= 0.2 - 1e-12) and np.all(result.x <= 0.4 + 1e-12)

    def test_improves_over_random(self, rng):
        bounds = np.array([[0.0, 1.0]] * 5)
        nsga = NSGA2(pop_size=30, n_generations=25, rng=rng)
        result = nsga.minimize(_zdt1_like, bounds)
        hv_nsga = hypervolume_2d(result.pareto_objectives, [1.1, 10.0])
        random_points = _zdt1_like(rng.uniform(size=(30, 5)))
        hv_random = hypervolume_2d(random_points, [1.1, 10.0])
        assert hv_nsga > hv_random

    def test_single_objective_degenerates_to_minimum(self, rng):
        def single(x):
            return np.sum((np.atleast_2d(x) - 0.3) ** 2, axis=1)

        nsga = NSGA2(pop_size=24, n_generations=25, rng=rng)
        result = nsga.minimize(single, np.array([[0.0, 1.0]] * 3))
        assert result.pareto_objectives.min() < 0.01

    def test_initial_population_seeded(self, rng):
        seeds = np.full((4, 2), 0.5)
        nsga = NSGA2(pop_size=8, n_generations=1, rng=rng)
        result = nsga.minimize(_zdt1_like, np.array([[0.0, 1.0]] * 2),
                               initial_population=seeds)
        assert result.x.shape == (8, 2)

    def test_nonfinite_objectives_handled(self, rng):
        def bad(x):
            values = _zdt1_like(x)
            values[::2] = np.nan
            return values

        nsga = NSGA2(pop_size=12, n_generations=3, rng=rng)
        result = nsga.minimize(bad, np.array([[0.0, 1.0]] * 2))
        assert np.all(np.isfinite(result.objectives))

    def test_pop_size_validation(self):
        with pytest.raises(ValueError):
            NSGA2(pop_size=2)

    def test_invalid_bounds(self, rng):
        nsga = NSGA2(pop_size=8, n_generations=1, rng=rng)
        with pytest.raises(ValueError):
            nsga.minimize(_zdt1_like, np.array([[1.0, 0.0]] * 2))

    def test_objective_row_mismatch_rejected(self, rng):
        nsga = NSGA2(pop_size=8, n_generations=1, rng=rng)
        with pytest.raises(ValueError):
            nsga.minimize(lambda x: np.zeros((3, 2)), np.array([[0.0, 1.0]] * 2))


class TestParetoProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 25))
    def test_pareto_front_nonempty_and_mutually_nondominated(self, n):
        rng = np.random.default_rng(n)
        objectives = rng.normal(size=(n, 3))
        mask = pareto_front_mask(objectives)
        front = objectives[mask]
        assert front.shape[0] >= 1
        for i in range(front.shape[0]):
            for j in range(front.shape[0]):
                if i != j:
                    assert not is_dominated(front[i], front[j])
