"""Tests for GP kernels: validity properties, composition and the Neural Kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Tensor
from repro.kernels import (
    ConstantKernel,
    DeepKernel,
    DeepNeuralKernel,
    KERNEL_REGISTRY,
    LinearKernel,
    Matern12Kernel,
    Matern32Kernel,
    Matern52Kernel,
    NeuralKernel,
    PeriodicKernel,
    ProductKernel,
    RBFKernel,
    RationalQuadraticKernel,
    ScaleKernel,
    SumKernel,
    WhiteKernel,
    WideNeuralKernel,
    make_kernel,
)

ALL_STATIONARY = [RBFKernel, RationalQuadraticKernel, PeriodicKernel,
                  Matern12Kernel, Matern32Kernel, Matern52Kernel]


def _random_inputs(rng, n=12, d=3):
    return rng.normal(size=(n, d))


@pytest.mark.parametrize("kernel_cls", ALL_STATIONARY + [LinearKernel])
class TestKernelValidity:
    def test_symmetry(self, kernel_cls, rng):
        kernel = kernel_cls(3)
        x = _random_inputs(rng)
        k = kernel.matrix(x, x)
        assert np.allclose(k, k.T, atol=1e-10)

    def test_positive_semidefinite(self, kernel_cls, rng):
        kernel = kernel_cls(3)
        x = _random_inputs(rng)
        eigenvalues = np.linalg.eigvalsh(kernel.matrix(x, x))
        assert eigenvalues.min() > -1e-8

    def test_cross_matrix_shape(self, kernel_cls, rng):
        kernel = kernel_cls(3)
        a, b = _random_inputs(rng, 5), _random_inputs(rng, 7)
        assert kernel.matrix(a, b).shape == (5, 7)

    def test_diag_matches_matrix(self, kernel_cls, rng):
        kernel = kernel_cls(3)
        x = _random_inputs(rng, 6)
        assert np.allclose(kernel.diag(x), np.diag(kernel.matrix(x, x)), atol=1e-10)


class TestStationaryBehaviour:
    def test_rbf_decays_with_distance(self):
        kernel = RBFKernel(1)
        near = kernel.matrix([[0.0]], [[0.1]])[0, 0]
        far = kernel.matrix([[0.0]], [[3.0]])[0, 0]
        assert near > far

    def test_rbf_self_similarity_is_max(self, rng):
        kernel = RBFKernel(2)
        x = _random_inputs(rng, 8, 2)
        k = kernel.matrix(x, x)
        assert np.all(np.diag(k) >= k.max(axis=1) - 1e-12)

    def test_ard_lengthscale_property(self):
        kernel = RBFKernel(4, lengthscale=0.5)
        assert np.allclose(kernel.lengthscale, 0.5)
        assert kernel.outputscale == pytest.approx(1.0)

    def test_periodic_kernel_periodicity(self):
        kernel = PeriodicKernel(1, period=1.0)
        k0 = kernel.matrix([[0.0]], [[0.0]])[0, 0]
        k_period = kernel.matrix([[0.0]], [[1.0]])[0, 0]
        assert k_period == pytest.approx(k0, rel=1e-6)

    def test_matern_smoothness_ordering(self, rng):
        # Rougher Matern kernels decay faster at moderate distance.
        x0, x1 = np.array([[0.0]]), np.array([[1.0]])
        k12 = Matern12Kernel(1).matrix(x0, x1)[0, 0]
        k52 = Matern52Kernel(1).matrix(x0, x1)[0, 0]
        assert k52 > k12

    def test_rq_alpha_property(self):
        kernel = RationalQuadraticKernel(2, alpha=2.0)
        assert kernel.alpha == pytest.approx(2.0)

    def test_linear_kernel_matches_dot_product(self, rng):
        kernel = LinearKernel(3, variance=1.0, bias=1e-12)
        x = _random_inputs(rng, 5)
        assert np.allclose(kernel.matrix(x, x), x @ x.T, atol=1e-6)

    def test_gradients_reach_hyperparameters(self, rng):
        kernel = RBFKernel(3)
        x = _random_inputs(rng, 6)
        kernel(Tensor(x), Tensor(x)).sum().backward()
        assert kernel.raw_lengthscale.grad is not None
        assert kernel.raw_outputscale.grad is not None


class TestCompositionAndWrappers:
    def test_sum_kernel(self, rng):
        x = _random_inputs(rng, 5)
        a, b = RBFKernel(3), Matern32Kernel(3)
        combined = a + b
        assert isinstance(combined, SumKernel)
        assert np.allclose(combined.matrix(x, x), a.matrix(x, x) + b.matrix(x, x))

    def test_product_kernel(self, rng):
        x = _random_inputs(rng, 5)
        a, b = RBFKernel(3), LinearKernel(3)
        combined = a * b
        assert isinstance(combined, ProductKernel)
        assert np.allclose(combined.matrix(x, x), a.matrix(x, x) * b.matrix(x, x))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SumKernel(RBFKernel(2), RBFKernel(3))
        with pytest.raises(ValueError):
            ProductKernel(RBFKernel(2), RBFKernel(3))

    def test_scale_kernel(self, rng):
        x = _random_inputs(rng, 4)
        base = RBFKernel(3)
        scaled = ScaleKernel(base, outputscale=4.0)
        assert np.allclose(scaled.matrix(x, x), 4.0 * base.matrix(x, x), rtol=1e-6)

    def test_constant_kernel(self, rng):
        kernel = ConstantKernel(2, constant=2.5)
        assert np.allclose(kernel.matrix(np.ones((3, 2)), np.ones((4, 2))), 2.5)

    def test_white_kernel_only_on_matches(self, rng):
        kernel = WhiteKernel(2, noise=0.3)
        x = _random_inputs(rng, 4, 2)
        k = kernel.matrix(x, x)
        assert np.allclose(np.diag(k), 0.3)
        assert np.allclose(k - np.diag(np.diag(k)), 0.0)

    def test_invalid_input_dim(self):
        with pytest.raises(ValueError):
            RBFKernel(0)

    def test_registry_and_factory(self):
        assert set(KERNEL_REGISTRY) >= {"rbf", "rq", "periodic", "neural", "deep"}
        assert isinstance(make_kernel("rbf", 3), RBFKernel)
        with pytest.raises(ValueError):
            make_kernel("nope", 3)


class TestNeuralKernel:
    def test_symmetry_and_psd(self, rng):
        kernel = NeuralKernel(3, rng=0)
        x = _random_inputs(rng, 10)
        k = kernel.matrix(x, x)
        assert np.allclose(k, k.T, atol=1e-8)
        assert np.linalg.eigvalsh(k).min() > -1e-6

    def test_positive_values(self, rng):
        kernel = NeuralKernel(3, rng=0)
        x = _random_inputs(rng, 6)
        assert np.all(kernel.matrix(x, x) > 0)

    def test_default_primitives_match_paper(self):
        kernel = NeuralKernel(4, rng=0)
        assert set(kernel.primitive_names) == {"rbf", "rq", "periodic"}

    def test_gradients_reach_all_parameters(self, rng):
        kernel = NeuralKernel(3, rng=0)
        x = _random_inputs(rng, 6)
        kernel(Tensor(x), Tensor(x)).sum().backward()
        grads = [p.grad is not None for p in kernel.parameters()]
        assert all(grads)
        assert kernel.num_parameters() > 10

    def test_latent_dim_and_mix(self):
        kernel = NeuralKernel(5, latent_dim=3, n_mix=2, rng=0)
        assert kernel.latent_dim == 3
        assert kernel.mix_weight.shape == (2, 3)

    def test_describe(self):
        info = NeuralKernel(3, rng=0).describe()
        assert info["type"] == "NeuralKernel"
        assert info["n_parameters"] > 0

    def test_requires_primitives(self):
        with pytest.raises(ValueError):
            NeuralKernel(3, primitives=())

    def test_unknown_primitive(self):
        with pytest.raises(ValueError):
            NeuralKernel(3, primitives=("bogus",))

    def test_deep_and_wide_stacks(self, rng):
        x = _random_inputs(rng, 6)
        for cls in (DeepNeuralKernel, WideNeuralKernel):
            kernel = cls(3, n_units=2, rng=0)
            k = kernel.matrix(x, x)
            assert np.allclose(k, k.T, atol=1e-8)
            assert np.linalg.eigvalsh(k).min() > -1e-6
        with pytest.raises(ValueError):
            DeepNeuralKernel(3, n_units=0)

    def test_deep_kernel_baseline(self, rng):
        kernel = DeepKernel(3, feature_dim=4, rng=0)
        x = _random_inputs(rng, 8)
        k = kernel.matrix(x, x)
        assert np.allclose(k, k.T, atol=1e-8)
        assert np.linalg.eigvalsh(k).min() > -1e-7


class TestKernelProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 10))
    def test_rbf_psd_random_sizes(self, n):
        rng = np.random.default_rng(n)
        x = rng.normal(size=(n, 2))
        eigenvalues = np.linalg.eigvalsh(RBFKernel(2).matrix(x, x))
        assert eigenvalues.min() > -1e-8

    @settings(max_examples=15, deadline=None)
    @given(st.floats(0.1, 5.0))
    def test_rbf_outputscale_scales_kernel(self, scale):
        x = np.array([[0.0], [1.0]])
        base = RBFKernel(1, outputscale=1.0).matrix(x, x)
        scaled = RBFKernel(1, outputscale=scale).matrix(x, x)
        assert np.allclose(scaled, scale * base, rtol=1e-6)
