"""Shared fixtures: cheap synthetic problems so BO tests avoid circuit simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bo.design_space import DesignSpace, DesignVariable
from repro.bo.problem import Constraint, OptimizationProblem


class QuadraticProblem(OptimizationProblem):
    """Cheap unconstrained maximisation problem: f(x) = -(x - 0.6)^2 summed."""

    def __init__(self, dim: int = 3):
        space = DesignSpace([DesignVariable(f"x{i}", 0.0, 1.0) for i in range(dim)])
        super().__init__(name="quadratic", design_space=space, objective="f",
                         minimize=False, constraints=[])

    def simulate(self, design):
        x = np.array([design[f"x{i}"] for i in range(self.design_space.dim)])
        return {"f": float(-np.sum((x - 0.6) ** 2))}


class ConstrainedToyProblem(OptimizationProblem):
    """Cheap constrained minimisation: minimise sum(x) s.t. prod-like metrics."""

    def __init__(self, dim: int = 3):
        space = DesignSpace([DesignVariable(f"x{i}", 0.0, 1.0) for i in range(dim)])
        constraints = [Constraint("g1", 0.5, "ge"), Constraint("g2", 1.5, "le")]
        super().__init__(name="constrained_toy", design_space=space, objective="cost",
                         minimize=True, constraints=constraints)

    def simulate(self, design):
        x = np.array([design[f"x{i}"] for i in range(self.design_space.dim)])
        return {
            "cost": float(np.sum(x)),
            "g1": float(x[0] + x[1]),           # needs to be >= 0.5
            "g2": float(np.sum(x ** 2)),         # needs to be <= 1.5
        }


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def quadratic_problem():
    return QuadraticProblem(dim=3)


@pytest.fixture
def constrained_problem():
    return ConstrainedToyProblem(dim=3)


@pytest.fixture(scope="session")
def two_stage_problem():
    from repro.circuits import TwoStageOpAmp
    return TwoStageOpAmp("180nm")


@pytest.fixture(scope="session")
def two_stage_evaluations(two_stage_problem):
    """A small shared batch of two-stage evaluations (simulation is the slow part)."""
    rng = np.random.default_rng(7)
    designs = two_stage_problem.design_space.sample(25, rng=rng)
    return two_stage_problem.evaluate_batch(designs)
