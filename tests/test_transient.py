"""Unit tests for the transient subsystem: waveforms, solver, measurements,
and the settling-time scenario flowing through the evaluation engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import TwoStageOpAmpSettling
from repro.engine import EvaluationEngine
from repro.errors import NetlistError
from repro.spice import (
    Capacitor,
    Circuit,
    CurrentSource,
    Inductor,
    PulseWaveform,
    PWLWaveform,
    Resistor,
    SineWaveform,
    StepWaveform,
    TransientResult,
    VoltageSource,
    ac_analysis,
    dc_operating_point,
    transient_analysis,
    transient_operating_point,
)

EXPERT_DESIGN = {
    "w_diff": 24e-6, "l_diff": 0.6e-6,
    "w_load": 12e-6, "l_load": 0.6e-6,
    "w_out": 80e-6, "l_out": 0.35e-6,
    "c_comp": 2.2e-12, "r_zero": 1.8e3,
    "i_bias1": 30e-6, "i_bias2": 220e-6,
}


def rc_circuit(waveform) -> Circuit:
    circuit = Circuit("rc")
    circuit.add(VoltageSource("VIN", "in", "0", dc=0.0, waveform=waveform))
    circuit.add(Resistor("R1", "in", "out", 1e3))
    circuit.add(Capacitor("C1", "out", "0", 1e-9))
    return circuit


class TestWaveforms:
    def test_step_levels_and_ramp(self):
        step = StepWaveform(initial=0.2, final=1.0, delay=1e-6, rise_time=1e-7)
        assert step.value_at(0.0) == 0.2
        assert step.value_at(1e-6) == 0.2
        assert step.value_at(1.05e-6) == pytest.approx(0.6)
        assert step.value_at(2e-6) == 1.0
        assert step.breakpoints(1e-5) == (1e-6, 1.1e-6)

    def test_step_breakpoints_clipped_to_window(self):
        step = StepWaveform(delay=2e-6)
        assert step.breakpoints(1e-6) == ()

    def test_pulse_single(self):
        pulse = PulseWaveform(initial=0.0, pulsed=1.0, delay=1e-6,
                              rise=1e-7, fall=1e-7, width=2e-6)
        assert pulse.value_at(0.5e-6) == 0.0
        assert pulse.value_at(1.05e-6) == pytest.approx(0.5)
        assert pulse.value_at(2e-6) == 1.0
        assert pulse.value_at(3.15e-6) == pytest.approx(0.5)
        assert pulse.value_at(5e-6) == 0.0

    def test_pulse_periodic(self):
        pulse = PulseWaveform(initial=0.0, pulsed=1.0, delay=0.0,
                              rise=0.0, fall=0.0, width=1e-6, period=2e-6)
        assert pulse.value_at(0.5e-6) == 1.0
        assert pulse.value_at(1.5e-6) == 0.0
        assert pulse.value_at(2.5e-6) == 1.0
        breaks = pulse.breakpoints(4e-6)
        assert all(0.0 < b < 4e-6 for b in breaks)
        assert any(abs(b - 2e-6) < 1e-12 for b in breaks)

    def test_pwl_interpolation_and_breakpoints(self):
        pwl = PWLWaveform([(0.0, 0.0), (1e-6, 1.0), (2e-6, 0.5)])
        assert pwl.value_at(0.5e-6) == pytest.approx(0.5)
        assert pwl.value_at(1.5e-6) == pytest.approx(0.75)
        assert pwl.value_at(5e-6) == 0.5  # holds the last value
        assert pwl.breakpoints(3e-6) == (1e-6, 2e-6)

    def test_pwl_requires_points(self):
        with pytest.raises(ValueError):
            PWLWaveform([])

    def test_sine_delay_and_phase(self):
        sine = SineWaveform(offset=0.5, amplitude=0.1, frequency=1e6,
                            delay=1e-6)
        assert sine.value_at(0.0) == pytest.approx(0.5)
        assert sine.value_at(1e-6 + 0.25e-6) == pytest.approx(0.6)

    def test_sources_fall_back_to_dc_without_waveform(self):
        source = VoltageSource("V1", "a", "0", dc=1.5)
        assert source.value_at(123.0) == 1.5
        sink = CurrentSource("I1", "a", "0", dc=2e-6)
        assert sink.value_at(0.5) == 2e-6


class TestTransientSolver:
    def test_grid_spans_window_exactly(self):
        result = transient_analysis(rc_circuit(StepWaveform(0.0, 1.0)), 1e-6)
        assert result.times[0] == 0.0
        assert result.times[-1] == pytest.approx(1e-6, rel=1e-12)
        assert np.all(np.diff(result.times) > 0)

    def test_breakpoints_are_hit_exactly(self):
        delay = 0.35e-6
        result = transient_analysis(
            rc_circuit(StepWaveform(0.0, 1.0, delay=delay)), 1e-6)
        assert np.min(np.abs(result.times - delay)) < 1e-18

    def test_breakpoint_within_tolerance_of_t_stop_merges(self):
        # Regression: a waveform edge within the controller's time
        # tolerance (1e-12 * t_stop) of the end of the window used to be
        # kept as its own breakpoint; landing on it ended the sweep one
        # sliver step short of t_stop.  It must merge into t_stop instead.
        t_stop = 1e-6
        delay, rise, fall = 0.2e-6, 1e-8, 1e-8
        width = (t_stop - 5e-19) - delay - rise - fall
        pulse = PulseWaveform(initial=0.0, pulsed=1.0, delay=delay,
                              rise=rise, fall=fall, width=width)
        edges = pulse.breakpoints(t_stop)
        assert any(0.0 < t_stop - edge <= 1e-12 * t_stop for edge in edges)
        result = transient_analysis(rc_circuit(pulse), t_stop)
        assert result.times[-1] == t_stop
        assert np.all(np.diff(result.times) > 0)

    def test_breakpoint_exactly_at_t_stop(self):
        # An edge landing exactly on t_stop is not a separate breakpoint --
        # the final time appears once and the grid stays strictly
        # increasing.
        t_stop = 1e-6
        pwl = PWLWaveform([(0.0, 0.0), (0.5e-6, 1.0), (t_stop, 0.5)])
        result = transient_analysis(rc_circuit(pwl), t_stop)
        assert result.times[-1] == t_stop
        assert np.all(np.diff(result.times) > 0)
        assert np.min(np.abs(result.times - 0.5e-6)) < 1e-18

    def test_breakpoints_denser_than_dt_initial(self):
        # A pulse train whose edges are closer together than the startup
        # timestep: the controller must land on every edge exactly rather
        # than stepping over any.
        t_stop = 1e-6
        pulse = PulseWaveform(initial=0.0, pulsed=1.0, delay=0.0,
                              rise=1e-9, fall=1e-9, width=4e-8,
                              period=1e-7)
        circuit = rc_circuit(pulse)
        result = transient_analysis(circuit, t_stop, dt_initial=2e-7)
        edges = [edge for edge in pulse.breakpoints(t_stop)
                 if 0.0 < edge < t_stop]
        assert max(np.diff(sorted(edges))) < 2e-7  # denser than dt_initial
        for edge in edges:
            assert np.min(np.abs(result.times - edge)) < 1e-18
        assert result.times[-1] == t_stop

    def test_initial_condition_uses_waveform_start(self):
        # Step *down* from 1 V: the t=0 sample must sit at the waveform's
        # initial level, not at the source's dc attribute (0 V here).
        result = transient_analysis(
            rc_circuit(StepWaveform(1.0, 0.0, delay=1e-7)), 8e-6,
            observe=["out"])
        assert result.voltage("out")[0] == pytest.approx(1.0, abs=1e-6)
        assert result.final_value("out") == pytest.approx(0.0, abs=1e-3)

    def test_transient_operating_point_restores_dc(self):
        circuit = rc_circuit(StepWaveform(0.7, 1.0))
        source = circuit.device("VIN")
        op = transient_operating_point(circuit)
        assert source.dc == 0.0  # restored
        assert op.voltage("out") == pytest.approx(0.7, abs=1e-6)

    def test_runs_are_deterministic(self):
        first = transient_analysis(rc_circuit(StepWaveform(0.0, 1.0)), 2e-6)
        second = transient_analysis(rc_circuit(StepWaveform(0.0, 1.0)), 2e-6)
        np.testing.assert_array_equal(first.times, second.times)
        np.testing.assert_array_equal(first.voltage("out"),
                                      second.voltage("out"))

    def test_current_source_waveform_drives_rc(self):
        circuit = Circuit("ir")
        circuit.add(CurrentSource("IIN", "0", "out", dc=0.0,
                                  waveform=StepWaveform(0.0, 1e-3)))
        circuit.add(Resistor("R1", "out", "0", 1e3))
        circuit.add(Capacitor("C1", "out", "0", 1e-9))
        result = transient_analysis(circuit, 10e-6, observe=["out"])
        assert result.final_value("out") == pytest.approx(1.0, rel=1e-3)

    def test_sine_steady_state_matches_ac(self):
        # Drive the RC well above its corner and compare the steady-state
        # amplitude with the AC transfer function at that frequency.
        frequency = 1.0 / (2 * np.pi * 1e-6)  # exactly the corner: |H|=1/sqrt(2)
        circuit = rc_circuit(SineWaveform(offset=0.0, amplitude=1.0,
                                          frequency=frequency))
        t_stop = 26e-6  # ~4 periods; the start-up transient decays with tau=1us
        result = transient_analysis(circuit, t_stop, observe=["out"],
                                    reltol=1e-5)
        tail = result.times > t_stop - 1.0 / frequency
        amplitude = 0.5 * (result.voltage("out")[tail].max()
                           - result.voltage("out")[tail].min())
        assert amplitude == pytest.approx(1.0 / np.sqrt(2.0), rel=1e-2)

    def test_observe_ground_returns_zeros(self):
        result = transient_analysis(rc_circuit(StepWaveform(0.0, 1.0)), 1e-6,
                                    observe=["0", "out"])
        assert np.all(result.voltage("0") == 0.0)

    def test_unknown_observe_node_raises(self):
        with pytest.raises(NetlistError):
            transient_analysis(rc_circuit(StepWaveform(0.0, 1.0)), 1e-6,
                               observe=["nope"])

    def test_invalid_t_stop_rejected(self):
        with pytest.raises(ValueError):
            transient_analysis(rc_circuit(StepWaveform(0.0, 1.0)), 0.0)

    def test_inductor_dc_is_short_and_ac_is_affine(self):
        circuit = Circuit("li")
        circuit.add(VoltageSource("VIN", "in", "0", dc=1.0))
        circuit.add(Resistor("R1", "in", "mid", 1e3))
        circuit.add(Inductor("L1", "mid", "0", 1e-3))
        op = dc_operating_point(circuit)
        assert op.voltage("mid") == pytest.approx(0.0, abs=1e-9)
        inductor = circuit.device("L1")
        assert inductor.branch_current(op.voltages) == pytest.approx(1e-3)
        # AC: |V_mid| = |jwL| / |R + jwL| -- cross-check one frequency on
        # both solver paths.
        circuit.device("VIN").ac = 1.0
        frequency = np.array([1e6])
        for method in ("vectorized", "per_frequency"):
            ac = ac_analysis(circuit, op, frequency, method=method)
            omega_l = 2 * np.pi * 1e6 * 1e-3
            expected = omega_l / np.hypot(1e3, omega_l)
            assert abs(ac.response("mid")[0]) == pytest.approx(expected, rel=1e-9)


class TestMeasurements:
    @staticmethod
    def first_order_result(tau: float = 1e-6, t_stop: float = 8e-6,
                           n: int = 2001) -> TransientResult:
        times = np.linspace(0.0, t_stop, n)
        return TransientResult(times=times,
                               node_voltages={"out": 1.0 - np.exp(-times / tau)})

    def test_settling_time_first_order(self):
        result = self.first_order_result()
        # 1% settling of a first-order step is ln(100) * tau.
        assert result.settling_time("out", tolerance=0.01) == pytest.approx(
            np.log(100.0) * 1e-6, rel=1e-2)

    def test_settling_time_never_settles_is_inf(self):
        times = np.linspace(0.0, 1.0, 101)
        ramp = TransientResult(times=times, node_voltages={"out": times.copy()})
        # Relative to a final value of 2.0 the ramp is still outside the band.
        assert ramp.settling_time("out", tolerance=0.01, final=2.0) == np.inf

    def test_slew_rate_first_order(self):
        result = self.first_order_result()
        # 10-90 slew of a first-order step: 0.8 / (tau * ln 9).
        assert result.slew_rate("out") == pytest.approx(
            0.8 / (np.log(9.0) * 1e-6), rel=1e-2)

    def test_slew_rate_dead_output_is_zero(self):
        flat = TransientResult(times=np.linspace(0, 1, 11),
                               node_voltages={"out": np.full(11, 0.3)})
        assert flat.slew_rate("out") == 0.0

    def test_zero_swing_measurements_are_zero(self):
        # A dead output (no swing at all) must hit the zero-swing branch of
        # every step-response measurement: no slew, settled from t=0, no
        # overshoot -- and never a divide-by-zero.
        flat = TransientResult(times=np.linspace(0, 1, 11),
                               node_voltages={"out": np.full(11, 0.3)})
        assert flat.slew_rate("out") == 0.0
        assert flat.settling_time("out") == 0.0
        assert flat.overshoot_percent("out") == 0.0
        # Noise around an unchanged final value still has zero swing.
        noisy = TransientResult(
            times=np.linspace(0, 1, 11),
            node_voltages={"out": 0.3 + 1e-16 * np.arange(11.0)})
        assert noisy.slew_rate("out") == 0.0
        assert noisy.overshoot_percent("out") == 0.0

    def test_overshoot_of_damped_ringing(self):
        times = np.linspace(0.0, 10.0, 4001)
        ring = 1.0 - np.exp(-0.5 * times) * np.cos(np.pi * times)
        result = TransientResult(times=times, node_voltages={"out": ring})
        # First peak: damping shifts it slightly before t=1.
        t_peak = 1.0 - np.arctan(0.5 / np.pi) / np.pi
        expected = -np.exp(-0.5 * t_peak) * np.cos(np.pi * t_peak) * 100.0
        assert result.overshoot_percent("out", final=1.0) == pytest.approx(
            expected, rel=1e-3)

    def test_overshoot_monotone_response_is_zero(self):
        result = self.first_order_result()
        assert result.overshoot_percent("out") == pytest.approx(0.0, abs=1e-6)

    def test_falling_step_measurements(self):
        times = np.linspace(0.0, 8e-6, 2001)
        falling = np.exp(-times / 1e-6)
        result = TransientResult(times=times, node_voltages={"out": falling})
        assert result.slew_rate("out") == pytest.approx(
            0.8 / (np.log(9.0) * 1e-6), rel=1e-2)
        assert result.settling_time("out", tolerance=0.01) == pytest.approx(
            np.log(100.0) * 1e-6, rel=1e-2)

    def test_value_interpolation(self):
        result = TransientResult(times=np.array([0.0, 1.0, 2.0]),
                                 node_voltages={"out": np.array([0.0, 2.0, 2.0])})
        assert result.value_at("out", 0.5) == pytest.approx(1.0)
        assert result.final_value("out") == 2.0


class TestSettlingScenario:
    """Acceptance: the settling scenario runs end-to-end through the engine."""

    def test_expert_design_metrics(self):
        problem = TwoStageOpAmpSettling("180nm")
        metrics = problem.simulate(EXPERT_DESIGN)
        assert set(problem.metric_names) <= set(metrics)
        assert 0.0 < metrics["t_settle"] < 1.0       # settles in well under 1 us
        assert metrics["slew"] > problem.constraints[0].threshold
        assert metrics["overshoot"] < problem.constraints[1].threshold
        assert metrics["i_total"] == pytest.approx(250.0, rel=0.05)

    def test_engine_roundtrip_with_cache_hits(self):
        problem = TwoStageOpAmpSettling("180nm")
        engine = EvaluationEngine(problem)
        x = np.array([[EXPERT_DESIGN[name] for name in problem.design_space.names]])
        first = engine.evaluate_batch(x)
        second = engine.evaluate_batch(x)
        assert engine.cache.stats.hits == 1
        assert engine.n_evaluated == 1  # the repeat never re-simulated
        np.testing.assert_array_equal(
            [first[0].metrics[m] for m in problem.metric_names],
            [second[0].metrics[m] for m in problem.metric_names])
        assert first[0].feasible

    def test_cache_token_folds_transient_config(self):
        base = TwoStageOpAmpSettling("180nm")
        assert base.cache_token != TwoStageOpAmpSettling(
            "180nm", t_stop=2e-6).cache_token
        assert base.cache_token != TwoStageOpAmpSettling(
            "180nm", transient_reltol=1e-5).cache_token
        assert base.cache_token != TwoStageOpAmpSettling(
            "180nm", step_amplitude=0.4).cache_token
        # Constraint levels decide feasibility of the cached records, so they
        # are part of the identity too.
        assert base.cache_token != TwoStageOpAmpSettling(
            "180nm", min_slew=5.0).cache_token
        assert base.cache_token != TwoStageOpAmpSettling(
            "180nm", max_overshoot=5.0).cache_token
        assert base.cache_token == TwoStageOpAmpSettling("180nm").cache_token

    def test_failed_metrics_cover_all_metric_names(self):
        problem = TwoStageOpAmpSettling("180nm")
        failed = problem.failed_metrics()
        for name in problem.metric_names:
            assert name in failed
        assert failed["t_settle"] >= 1e6
        evaluation = problem.failed_evaluation(np.zeros(problem.design_space.dim))
        assert not evaluation.feasible
