"""Tests for the reverse-mode autodiff engine (gradient checks included)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Tensor, no_grad
from repro.autodiff.functional import (
    as_tensor,
    concatenate,
    dot,
    pairwise_l1dist,
    pairwise_sqdist,
    quadratic_form,
    stack,
)


def numeric_gradient(func, x, eps=1e-6):
    grad = np.zeros_like(x)
    for index in np.ndindex(x.shape):
        plus, minus = x.copy(), x.copy()
        plus[index] += eps
        minus[index] -= eps
        grad[index] = (func(plus) - func(minus)) / (2 * eps)
    return grad


def check_gradient(build_loss, x0, tolerance=1e-5):
    """Compare autodiff gradient against central finite differences."""
    tensor = Tensor(x0, requires_grad=True)
    build_loss(tensor).backward()
    numeric = numeric_gradient(lambda x: float(build_loss(Tensor(x)).data), x0)
    assert np.max(np.abs(tensor.grad - numeric)) < tolerance


class TestBasicOps:
    def test_add_grad(self, rng):
        x = rng.normal(size=(3, 2))
        check_gradient(lambda t: (t + 2.0 + t).sum(), x)

    def test_sub_and_neg_grad(self, rng):
        x = rng.normal(size=(4,))
        check_gradient(lambda t: (1.5 - t - t).sum(), x)

    def test_mul_grad(self, rng):
        x = rng.normal(size=(3, 3))
        check_gradient(lambda t: (t * t * 3.0).sum(), x)

    def test_div_grad(self, rng):
        x = rng.uniform(0.5, 2.0, size=(5,))
        check_gradient(lambda t: (2.0 / t + t / 4.0).sum(), x)

    def test_pow_grad(self, rng):
        x = rng.uniform(0.5, 2.0, size=(4,))
        check_gradient(lambda t: (t ** 3).sum(), x)

    def test_matmul_grad(self, rng):
        w = rng.normal(size=(3, 4))
        fixed = rng.normal(size=(4, 2))
        check_gradient(lambda t: (t @ Tensor(fixed)).sum(), w)

    def test_matmul_vector_cases(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (a @ b).backward()
        assert np.allclose(a.grad, b.data)
        assert np.allclose(b.grad, a.data)

    def test_exp_log_sqrt_grads(self, rng):
        x = rng.uniform(0.5, 2.0, size=(6,))
        check_gradient(lambda t: (t.exp() + t.log() + t.sqrt()).sum(), x)

    def test_sigmoid_tanh_relu_grads(self, rng):
        x = rng.normal(size=(10,))
        check_gradient(lambda t: (t.sigmoid() * 2.0 + t.tanh()).sum(), x)
        check_gradient(lambda t: t.relu().sum(), x + 0.1)

    def test_softplus_abs_grads(self, rng):
        x = rng.normal(size=(8,)) + 0.05
        check_gradient(lambda t: (t.softplus() + t.abs()).sum(), x)

    def test_clip_min_grad_passes_above(self):
        t = Tensor([0.5, 2.0], requires_grad=True)
        t.clip_min(1.0).sum().backward()
        assert np.allclose(t.grad, [0.0, 1.0])


class TestShapesAndReductions:
    def test_transpose_grad(self, rng):
        x = rng.normal(size=(3, 5))
        check_gradient(lambda t: (t.transpose() @ Tensor(np.ones((3, 1)))).sum(), x)

    def test_reshape_grad(self, rng):
        x = rng.normal(size=(2, 6))
        check_gradient(lambda t: (t.reshape(3, 4) * 2.0).sum(), x)

    def test_sum_axis_keepdims(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        out.sum().backward()
        assert np.allclose(x.grad, 1.0)

    def test_mean_grad(self, rng):
        x = rng.normal(size=(4, 4))
        check_gradient(lambda t: t.mean() * 16.0, x)

    def test_getitem_grad(self, rng):
        x = Tensor(rng.normal(size=(5,)), requires_grad=True)
        (x[2] * 3.0).backward()
        expected = np.zeros(5)
        expected[2] = 3.0
        assert np.allclose(x.grad, expected)

    def test_broadcast_add_grad(self, rng):
        a = Tensor(rng.normal(size=(4, 1)), requires_grad=True)
        b = Tensor(rng.normal(size=(1, 3)), requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, 3.0)
        assert np.allclose(b.grad, 4.0)

    def test_broadcast_mul_unbroadcast(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (a * b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)


class TestGraphMechanics:
    def test_reused_leaf_accumulates(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a + a * 3.0).backward()
        assert np.allclose(a.grad, 7.0)

    def test_reused_intermediate_node(self, rng):
        x = Tensor(rng.normal(size=(4,)), requires_grad=True)
        z = x * 2.0
        ((z * z).sum() + z.sum() * 3.0).backward()
        assert np.allclose(x.grad, 8.0 * x.data + 6.0)

    def test_backward_with_seed(self, rng):
        k = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        seed = rng.normal(size=(3, 3))
        (k * k).backward(seed)
        assert np.allclose(k.grad, 2.0 * k.data * seed)

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_seed(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_no_grad_context(self):
        with no_grad():
            t = Tensor([1.0], requires_grad=True)
            out = t * 2.0
        assert not out.requires_grad

    def test_detach_cuts_graph(self):
        t = Tensor([1.0], requires_grad=True)
        assert not t.detach().requires_grad

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).backward()
        t.zero_grad()
        assert t.grad is None

    def test_item_and_numpy(self):
        t = Tensor([[3.5]])
        assert t.item() == 3.5
        assert t.numpy().shape == (1, 1)

    def test_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([3.0])


class TestFunctional:
    def test_pairwise_sqdist_values(self, rng):
        a = rng.normal(size=(5, 3))
        b = rng.normal(size=(4, 3))
        expected = ((a[:, None, :] - b[None, :, :]) ** 2).sum(-1)
        assert np.allclose(pairwise_sqdist(Tensor(a), Tensor(b)).data, expected, atol=1e-9)

    def test_pairwise_sqdist_gradient(self, rng):
        a = rng.normal(size=(4, 2))
        b = rng.normal(size=(3, 2))
        weights = rng.normal(size=(4, 3))
        check_gradient(lambda t: (pairwise_sqdist(t, Tensor(b)) * weights).sum(), a)

    def test_pairwise_sqdist_nonnegative(self, rng):
        a = rng.normal(size=(6, 2))
        assert np.all(pairwise_sqdist(Tensor(a), Tensor(a)).data >= 0.0)

    def test_pairwise_l1dist(self, rng):
        a = rng.normal(size=(3, 2))
        b = rng.normal(size=(2, 2))
        expected = np.abs(a[:, None, :] - b[None, :, :]).sum(-1)
        assert np.allclose(pairwise_l1dist(Tensor(a), Tensor(b)).data, expected)

    def test_stack_and_grad(self, rng):
        tensors = [Tensor(rng.normal(size=(2, 2)), requires_grad=True) for _ in range(3)]
        out = stack(tensors, axis=0)
        assert out.shape == (3, 2, 2)
        (out * 2.0).sum().backward()
        for tensor in tensors:
            assert np.allclose(tensor.grad, 2.0)

    def test_concatenate_and_grad(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        out = concatenate([a, b], axis=0)
        assert out.shape == (6, 3)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0) and np.allclose(b.grad, 1.0)

    def test_dot_and_quadratic_form(self, rng):
        v = rng.normal(size=(4,))
        m = rng.normal(size=(4, 4))
        assert dot(Tensor(v), Tensor(v)).item() == pytest.approx(float(v @ v))
        assert quadratic_form(Tensor(v), Tensor(m)).item() == pytest.approx(float(v @ m @ v))

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 5), st.integers(1, 5))
    def test_matmul_shapes(self, n, m):
        a = Tensor(np.ones((n, 3)), requires_grad=True)
        b = Tensor(np.ones((3, m)))
        out = a @ b
        assert out.shape == (n, m)
        out.sum().backward()
        assert a.grad.shape == (n, 3)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-5, 5), min_size=1, max_size=10))
    def test_sigmoid_range_and_grad_sign(self, values):
        t = Tensor(values, requires_grad=True)
        out = t.sigmoid()
        assert np.all(out.data > 0) and np.all(out.data < 1)
        out.sum().backward()
        assert np.all(t.grad >= 0)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(-3, 3), min_size=2, max_size=8))
    def test_sum_equals_numpy(self, values):
        assert Tensor(values).sum().item() == pytest.approx(float(np.sum(values)), abs=1e-9)
