"""Tests for GP regression and the multi-output wrapper."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.errors import NotFittedError
from repro.gp import GPRegression, MultiOutputGP
from repro.kernels import Matern52Kernel, NeuralKernel, RBFKernel


def _toy_data(rng, n=30, d=2):
    x = rng.uniform(0, 1, size=(n, d))
    y = np.sin(5 * x[:, 0]) + x[:, 1] ** 2 + 0.01 * rng.normal(size=n)
    return x, y


class TestGPRegression:
    def test_interpolates_training_data(self, rng):
        x, y = _toy_data(rng)
        gp = GPRegression().fit(x, y, n_iters=40)
        mean, _ = gp.predict(x)
        assert np.max(np.abs(mean - y)) < 0.15

    def test_generalises(self, rng):
        x, y = _toy_data(rng, n=50)
        x_test = rng.uniform(0, 1, size=(20, 2))
        y_test = np.sin(5 * x_test[:, 0]) + x_test[:, 1] ** 2
        gp = GPRegression().fit(x, y, n_iters=60)
        mean, _ = gp.predict(x_test)
        assert np.sqrt(np.mean((mean - y_test) ** 2)) < 0.3

    def test_variance_lower_near_training_points(self, rng):
        x, y = _toy_data(rng)
        gp = GPRegression().fit(x, y, n_iters=40)
        _, var_train = gp.predict(x[:5])
        _, var_far = gp.predict(np.full((1, 2), 5.0))
        assert var_far[0] > var_train.mean()

    def test_training_improves_likelihood(self, rng):
        x, y = _toy_data(rng)
        gp = GPRegression().fit(x, y, n_iters=60)
        assert len(gp.training_history_) > 2
        assert gp.training_history_[-1] <= gp.training_history_[0]

    def test_return_std(self, rng):
        x, y = _toy_data(rng)
        gp = GPRegression().fit(x, y, n_iters=20)
        mean, std = gp.predict(x[:3], return_std=True)
        _, var = gp.predict(x[:3])
        assert np.allclose(std, np.sqrt(var))

    def test_no_optimize_keeps_hyperparameters(self, rng):
        x, y = _toy_data(rng)
        kernel = RBFKernel(2)
        before = kernel.raw_lengthscale.data.copy()
        GPRegression(kernel=kernel).fit(x, y, optimize=False)
        assert np.allclose(kernel.raw_lengthscale.data, before)

    def test_custom_kernels(self, rng):
        x, y = _toy_data(rng)
        for kernel in (Matern52Kernel(2), NeuralKernel(2, rng=0)):
            gp = GPRegression(kernel=kernel).fit(x, y, n_iters=30)
            mean, var = gp.predict(x[:4])
            assert np.all(np.isfinite(mean)) and np.all(var > 0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            GPRegression().predict(np.zeros((1, 2)))

    def test_mismatched_shapes_raise(self, rng):
        with pytest.raises(ValueError):
            GPRegression().fit(rng.normal(size=(5, 2)), rng.normal(size=4))

    def test_kernel_dim_mismatch(self, rng):
        x, y = _toy_data(rng)
        with pytest.raises(ValueError):
            GPRegression(kernel=RBFKernel(5)).fit(x, y)

    def test_single_point_fit(self):
        gp = GPRegression().fit(np.array([[0.5, 0.5]]), np.array([1.0]))
        mean, var = gp.predict(np.array([[0.5, 0.5]]))
        assert np.isfinite(mean[0]) and var[0] >= 0

    def test_normalize_y_recovers_offset(self, rng):
        x = rng.uniform(size=(20, 1))
        y = 1000.0 + np.sin(3 * x[:, 0])
        gp = GPRegression().fit(x, y, n_iters=40)
        mean, _ = gp.predict(x)
        assert np.abs(mean - y).max() < 1.0

    def test_log_marginal_likelihood_finite(self, rng):
        x, y = _toy_data(rng)
        gp = GPRegression().fit(x, y, n_iters=20)
        assert np.isfinite(gp.log_marginal_likelihood())

    def test_noise_property_positive(self, rng):
        x, y = _toy_data(rng)
        gp = GPRegression().fit(x, y, n_iters=20)
        assert gp.noise > 0

    def test_sample_posterior_shape(self, rng):
        x, y = _toy_data(rng)
        gp = GPRegression().fit(x, y, n_iters=20)
        samples = gp.sample_posterior(x[:6], n_samples=3, rng=rng)
        assert samples.shape == (3, 6)

    def test_predict_tensor_matches_predict(self, rng):
        x, y = _toy_data(rng)
        gp = GPRegression().fit(x, y, n_iters=30)
        x_new = rng.uniform(size=(5, 2))
        mean_np, var_np = gp.predict(x_new)
        mean_t, var_t = gp.predict_tensor(Tensor(x_new))
        assert np.allclose(mean_t.data, mean_np, atol=1e-8)
        assert np.allclose(var_t.data, var_np, atol=1e-8)

    def test_predict_tensor_gradient_matches_finite_difference(self, rng):
        x, y = _toy_data(rng)
        gp = GPRegression().fit(x, y, n_iters=30)
        x_new = rng.uniform(0.2, 0.8, size=(3, 2))
        tensor = Tensor(x_new, requires_grad=True)
        mean, var = gp.predict_tensor(tensor)
        (mean + var).sum().backward()
        eps = 1e-5
        perturbed = x_new.copy()
        perturbed[1, 0] += eps
        minus = x_new.copy()
        minus[1, 0] -= eps

        def scalar(z):
            m, v = gp.predict(z)
            return float((m + v).sum())

        numeric = (scalar(perturbed) - scalar(minus)) / (2 * eps)
        assert tensor.grad[1, 0] == pytest.approx(numeric, rel=1e-3, abs=1e-6)


class TestMultiOutputGP:
    def test_fits_each_output(self, rng):
        x, y = _toy_data(rng)
        outputs = np.column_stack([y, -2.0 * y + 3.0])
        model = MultiOutputGP().fit(x, outputs, n_iters=30)
        mean, var = model.predict(x)
        assert mean.shape == (x.shape[0], 2)
        assert var.shape == (x.shape[0], 2)
        assert np.abs(mean - outputs).max() < 0.5

    def test_len_and_getitem(self, rng):
        x, y = _toy_data(rng)
        model = MultiOutputGP().fit(x, np.column_stack([y, y]), n_iters=10)
        assert len(model) == 2
        assert isinstance(model[0], GPRegression)

    def test_kernel_factory_used(self, rng):
        x, y = _toy_data(rng)
        model = MultiOutputGP(kernel_factory=lambda d: Matern52Kernel(d))
        model.fit(x, np.column_stack([y]), n_iters=10)
        assert isinstance(model[0].kernel, Matern52Kernel)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MultiOutputGP().predict(np.zeros((1, 2)))

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            MultiOutputGP().fit(rng.normal(size=(5, 2)), rng.normal(size=(4, 2)))

    def test_predict_tensor_shapes(self, rng):
        x, y = _toy_data(rng)
        model = MultiOutputGP().fit(x, np.column_stack([y, y * 2]), n_iters=10)
        mean, var = model.predict_tensor(Tensor(x[:4]))
        assert mean.shape == (4, 2)
        assert var.shape == (4, 2)
