"""Tests for the declarative testbench layer and PVT corner sweeps.

The centrepiece is the equivalence suite: every registered circuit's
Testbench-produced metrics must be **bit-identical** to the legacy
imperative ``simulate()`` path at the nominal corner, for good designs and
for random (often failing) ones alike.  On top of that: operating-point
reuse accounting, per-analysis temperature, testbench validation, corner
technology derivation, worst-case aggregation and corner-sweep determinism
across execution backends.
"""

import numpy as np
import pytest

from repro.bench import (
    ACSpec,
    Check,
    CornerSpec,
    Measure,
    OPSpec,
    Simulator,
    TempSweepSpec,
    Testbench,
    apply_corner,
    gain_db,
    nominal_corner,
    standard_corners,
    supply_current_ua,
    worst_case_metrics,
)
from repro.bo.problem import Constraint
from repro.circuits import CornerSizingProblem, available_problems, make_problem
from repro.engine import EvaluationEngine
from repro.pdk import get_technology
from repro.spice import dc_operating_point

GOOD_DESIGNS = {
    "two_stage_opamp": dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6,
                            l_load=0.5e-6, w_out=60e-6, l_out=0.3e-6,
                            c_comp=2e-12, r_zero=2e3, i_bias1=20e-6,
                            i_bias2=100e-6),
    "two_stage_opamp_settling": dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6,
                                     l_load=0.5e-6, w_out=60e-6, l_out=0.3e-6,
                                     c_comp=2e-12, r_zero=2e3, i_bias1=20e-6,
                                     i_bias2=100e-6),
    "three_stage_opamp": dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6,
                              l_load=0.5e-6, w_mid=30e-6, l_mid=0.35e-6,
                              w_out=80e-6, l_out=0.25e-6, c_m1=2e-12,
                              c_m2=0.5e-12, i_bias1=10e-6, i_bias23=80e-6),
    "bandgap": dict(r_ptat=100e3, r_out=600e3, w_mirror=10e-6, l_mirror=1e-6,
                    w_amp_in=5e-6, l_amp_in=0.5e-6, i_amp=1e-6,
                    area_ratio=8.0),
}

#: Circuits with a legacy imperative reference path (all the paper's benches).
LEGACY_CIRCUITS = sorted(GOOD_DESIGNS)

#: AC-only circuits are cheap enough for random-design equivalence sampling.
FAST_CIRCUITS = ["two_stage_opamp", "three_stage_opamp", "bandgap"]


# ===================================================================== #
# equivalence: Testbench vs legacy imperative path                      #
# ===================================================================== #
class TestLegacyEquivalence:
    @pytest.mark.parametrize("name", LEGACY_CIRCUITS)
    def test_good_design_bit_identical(self, name):
        problem = make_problem(name)
        new = problem.simulate(GOOD_DESIGNS[name])
        old = problem._legacy_simulate(GOOD_DESIGNS[name])
        assert set(new) == set(old)
        for key in old:
            assert new[key] == old[key], (name, key)

    @pytest.mark.parametrize("name", FAST_CIRCUITS)
    def test_random_designs_bit_identical(self, name):
        # Random samples exercise failure paths (dead amplifiers, collapsed
        # references) as well as healthy ones; the two paths must agree on
        # every one of them, failed designs included.
        problem = make_problem(name)
        rng = np.random.default_rng(7)
        samples = problem.design_space.sample(6, rng)
        for row in samples:
            design = problem.design_space.as_dict(row)
            new = problem.simulate(design)
            old = problem._legacy_simulate(design)
            assert set(new) == set(old)
            for key in old:
                assert new[key] == old[key], (name, key)

    @pytest.mark.parametrize("name", FAST_CIRCUITS)
    def test_40nm_good_design_bit_identical(self, name):
        problem = make_problem(name, "40nm")
        new = problem.simulate(GOOD_DESIGNS[name])
        old = problem._legacy_simulate(GOOD_DESIGNS[name])
        for key in old:
            assert new[key] == old[key], (name, key)


# ===================================================================== #
# operating-point reuse                                                 #
# ===================================================================== #
class TestOperatingPointReuse:
    def test_two_stage_shares_one_bias(self):
        problem = make_problem("two_stage_opamp")
        sim = Simulator()
        result = sim.run(problem.bench, GOOD_DESIGNS["two_stage_opamp"])
        assert result.ok
        assert result.stats["n_op_solves"] == 1
        assert result.stats["n_op_reused"] == 1
        assert result.stats["n_circuits_built"] == 1

    def test_naive_mode_resolves_per_analysis(self):
        problem = make_problem("two_stage_opamp")
        design = GOOD_DESIGNS["two_stage_opamp"]
        shared = Simulator(reuse_op=True).run(problem.bench, design)
        naive = Simulator(reuse_op=False).run(problem.bench, design)
        assert naive.stats["n_op_solves"] > shared.stats["n_op_solves"]
        assert naive.metrics == shared.metrics  # reuse never changes results

    def test_solver_call_count_drops_for_multi_analysis_bench(self, monkeypatch):
        # A bench with several analyses around one bias must hit the Newton
        # solver once; count actual dc_operating_point calls to be sure the
        # accounting is not fictional.
        import repro.bench.simulator as simulator_module
        calls = {"n": 0}
        real = dc_operating_point

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(simulator_module, "dc_operating_point", counting)
        problem = make_problem("two_stage_opamp")
        frequencies = problem.ac_frequencies
        bench = Testbench(
            name="multi_ac",
            builders={"main": problem.build_circuit},
            analyses=[
                OPSpec("op"),
                ACSpec("ac1", frequencies=frequencies, observe=("out",), op="op"),
                ACSpec("ac2", frequencies=frequencies[:11], observe=("out",),
                       op="op"),
                ACSpec("ac3", frequencies=frequencies[:5], observe=("out",)),
            ],
            measures=[gain_db("ac1", "out", name="gain")],
        )
        result = Simulator().run(bench, GOOD_DESIGNS["two_stage_opamp"])
        assert result.ok
        assert calls["n"] == 1          # four analyses, one Newton solve
        assert result.stats["n_op_reused"] == 3

    def test_bandgap_builds_one_circuit(self):
        # The legacy path built a second PSRR netlist and re-solved it; the
        # bench shares one netlist across the sweep, the bias and the AC.
        problem = make_problem("bandgap")
        result = Simulator().run(problem.bench, GOOD_DESIGNS["bandgap"])
        assert result.ok
        assert result.stats["n_circuits_built"] == 1


# ===================================================================== #
# temperature plumbing                                                  #
# ===================================================================== #
class TestTemperature:
    def test_bench_default_temperature_reaches_operating_point(self):
        problem = make_problem("two_stage_opamp")
        result = Simulator().run(problem.bench, GOOD_DESIGNS["two_stage_opamp"])
        assert result["op"].temperature == 27.0

    def test_per_analysis_temperature_override(self):
        problem = make_problem("two_stage_opamp")
        bench = Testbench(
            name="hot_op",
            builders={"main": problem.build_circuit},
            analyses=[OPSpec("op", temperature=85.0)],
            measures=[supply_current_ua(analysis="op", source="VDD",
                                        circuit="main", name="i_total")],
        )
        result = Simulator().run(bench, GOOD_DESIGNS["two_stage_opamp"])
        assert result.ok
        assert result["op"].temperature == 85.0

    def test_hot_problem_changes_metrics(self):
        nominal = make_problem("two_stage_opamp")
        hot = make_problem("two_stage_opamp")
        hot.sim_temperature = 125.0
        design = GOOD_DESIGNS["two_stage_opamp"]
        cold_metrics = nominal.simulate(design)
        hot_metrics = hot.simulate(design)
        assert hot_metrics["gain"] != cold_metrics["gain"]
        # Distinct analysis temperatures must never share cache entries.
        assert nominal.cache_token != hot.cache_token

    def test_mutated_config_is_picked_up_after_first_simulate(self):
        # The bench is rebuilt per simulation, so configuration mutated
        # *after* a simulation must take effect (and track cache_token).
        problem = make_problem("two_stage_opamp")
        design = GOOD_DESIGNS["two_stage_opamp"]
        cold = problem.simulate(design)
        token_cold = problem.cache_token
        problem.sim_temperature = 125.0
        hot = problem.simulate(design)
        assert hot["gain"] != cold["gain"]
        assert problem.cache_token != token_cold

    def test_conflicting_pinned_temperature_rejected(self):
        # An analysis that pins a temperature while referencing a bias
        # solved at another one would silently run at the bias temperature;
        # the bench must refuse the contradiction at construction.
        problem = make_problem("two_stage_opamp")
        with pytest.raises(ValueError, match="pins temperature"):
            Testbench(
                name="conflict",
                builders={"main": problem.build_circuit},
                analyses=[
                    OPSpec("op"),
                    ACSpec("ac", frequencies=np.array([1.0, 10.0]),
                           observe=("out",), op="op", temperature=125.0),
                ],
                measures=[])

    def test_transient_temperature_conflict_is_deprecated(self):
        from repro.spice import (
            Capacitor,
            Circuit,
            Resistor,
            StepWaveform,
            VoltageSource,
            transient_analysis,
            transient_operating_point,
        )
        circuit = Circuit("rc")
        circuit.add(VoltageSource("V1", "in", "0", dc=0.0,
                                  waveform=StepWaveform(0.0, 1.0)))
        circuit.add(Resistor("R1", "in", "out", 1e3))
        circuit.add(Capacitor("C1", "out", "0", 1e-9))
        op = transient_operating_point(circuit, temperature=85.0)
        with pytest.warns(DeprecationWarning, match="temperature"):
            transient_analysis(circuit, 1e-6, observe=["out"],
                               operating_point=op, temperature=27.0)
        # Matching (or omitted) temperatures stay silent.
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            transient_analysis(circuit, 1e-6, observe=["out"],
                               operating_point=op)


# ===================================================================== #
# testbench validation and failure handling                             #
# ===================================================================== #
class TestTestbenchValidation:
    def _builder(self, design):  # pragma: no cover - never simulated
        raise AssertionError("validation must fail before building")

    def test_duplicate_analysis_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate analysis"):
            Testbench("t", self._builder,
                      analyses=[OPSpec("op"), OPSpec("op")], measures=[])

    def test_unknown_circuit_key_rejected(self):
        with pytest.raises(ValueError, match="unknown circuit"):
            Testbench("t", self._builder,
                      analyses=[OPSpec("op", circuit="nope")], measures=[])

    def test_forward_op_reference_rejected(self):
        with pytest.raises(ValueError, match="not an earlier OP analysis"):
            Testbench("t", self._builder,
                      analyses=[ACSpec("ac", frequencies=np.array([1.0]),
                                       observe=("out",), op="op"),
                                OPSpec("op")],
                      measures=[])

    def test_duplicate_measure_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate measure"):
            Testbench("t", self._builder, analyses=[OPSpec("op")],
                      measures=[Measure("m", lambda ctx: 0.0),
                                Measure("m", lambda ctx: 1.0)])

    def test_failed_check_reports_reason(self):
        problem = make_problem("two_stage_opamp")
        bench = Testbench(
            name="always_dead",
            builders={"main": problem.build_circuit},
            analyses=[OPSpec("op")],
            checks=[Check("never alive", lambda ctx: False)],
            measures=[])
        result = Simulator().run(bench, GOOD_DESIGNS["two_stage_opamp"])
        assert not result.ok
        assert "never alive" in result.failure

    def test_non_finite_gated_measure_fails(self):
        problem = make_problem("two_stage_opamp")
        bench = Testbench(
            name="nan_gate",
            builders={"main": problem.build_circuit},
            analyses=[OPSpec("op")],
            measures=[Measure("bad", lambda ctx: float("nan"),
                              require_finite=True)])
        result = Simulator().run(bench, GOOD_DESIGNS["two_stage_opamp"])
        assert not result.ok
        assert "bad" in result.failure


# ===================================================================== #
# PVT corners                                                           #
# ===================================================================== #
class TestCornerSpecs:
    def test_process_letters_validated(self):
        with pytest.raises(ValueError, match="process"):
            CornerSpec("broken", process="sx")
        with pytest.raises(ValueError, match="vdd_scale"):
            CornerSpec("broken", vdd_scale=0.0)

    def test_standard_corners_nominal_first_unique(self):
        corners = standard_corners()
        assert corners[0].is_nominal
        names = [corner.name for corner in corners]
        assert len(set(names)) == len(names) == 5

    def test_apply_corner_scales_models(self):
        tech = get_technology("180nm")
        slow = apply_corner(tech, CornerSpec("s", "ss", 125.0, 0.9))
        assert slow.nmos.kp == pytest.approx(tech.nmos.kp * 0.85)
        assert slow.nmos.vth0 == pytest.approx(tech.nmos.vth0 + 0.03)
        assert slow.vdd == pytest.approx(tech.vdd * 0.9)
        assert slow.name == tech.name          # design spaces keyed on name
        assert slow.fingerprint != tech.fingerprint
        fast = apply_corner(tech, CornerSpec("f", "ff", -40.0, 1.1))
        assert fast.nmos.kp > tech.nmos.kp > slow.nmos.kp

    def test_nominal_corner_card_is_bitwise_nominal(self):
        tech = get_technology("180nm")
        derived = apply_corner(tech, nominal_corner())
        assert derived.nmos.kp == tech.nmos.kp
        assert derived.vdd == tech.vdd
        assert derived.fingerprint == tech.fingerprint

    def test_worst_case_aggregation(self):
        constraints = [Constraint("gain", 60.0, "ge"),
                       Constraint("noise", 1.0, "le")]
        per_corner = [
            {"i": 10.0, "gain": 70.0, "noise": 0.5, "extra": 3.0},
            {"i": 12.0, "gain": 61.0, "noise": 0.9, "extra": 9.0},
            {"i": 11.0, "gain": 75.0, "noise": 0.2, "extra": 1.0},
        ]
        worst = worst_case_metrics(per_corner, "i", True, constraints)
        assert worst["i"] == 12.0              # minimised objective: max
        assert worst["gain"] == 61.0           # ge constraint: min
        assert worst["noise"] == 0.9           # le constraint: max
        assert worst["extra"] == 3.0           # unconstrained: nominal corner
        assert worst["i_nominal"] == 10.0


class TestCornerProblems:
    def test_registered(self):
        assert {"two_stage_opamp_corners", "three_stage_opamp_corners",
                "bandgap_corners"} <= set(available_problems())

    def test_nominal_child_matches_base_problem(self):
        corners = make_problem("two_stage_opamp_corners")
        base = make_problem("two_stage_opamp")
        design = GOOD_DESIGNS["two_stage_opamp"]
        child_metrics = corners.children[0].simulate(design)
        base_metrics = base.simulate(design)
        for key in base_metrics:
            assert child_metrics[key] == base_metrics[key]

    def test_worst_case_never_beats_nominal(self):
        corners = make_problem("two_stage_opamp_corners")
        design = GOOD_DESIGNS["two_stage_opamp"]
        worst = corners.simulate(design)
        nominal = corners.children[0].simulate(design)
        assert worst["gain"] <= nominal["gain"]
        assert worst["pm"] <= nominal["pm"]
        assert worst["gbw"] <= nominal["gbw"]
        assert worst["i_total"] >= nominal["i_total"]
        assert worst["i_total_nominal"] == nominal["i_total"]

    def test_children_cache_tokens_distinct(self):
        corners = make_problem("two_stage_opamp_corners")
        tokens = [child.cache_token for child in corners.children]
        assert len(set(tokens)) == len(tokens)
        base = make_problem("two_stage_opamp")
        assert corners.cache_token != base.cache_token

    def test_corner_set_changes_cache_token(self):
        default = make_problem("two_stage_opamp_corners")
        reduced = make_problem(
            "two_stage_opamp_corners",
            corners=[{"name": "nominal"},
                     {"name": "hot", "process": "ss", "temperature": 125.0,
                      "vdd_scale": 0.9}])
        assert default.cache_token != reduced.cache_token
        assert len(reduced.corners) == 2
        assert reduced.corners[1].process == "ss"  # dict coercion worked

    def test_custom_base_kwargs_forwarded(self):
        corners = make_problem("two_stage_opamp_corners",
                               load_capacitance=5e-12)
        assert all(child.load_capacitance == 5e-12
                   for child in corners.children)

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_corner_sweep_deterministic_across_backends(self, backend):
        reference = make_problem("two_stage_opamp_corners")
        parallel = make_problem("two_stage_opamp_corners", backend=backend,
                                max_workers=2)
        design = GOOD_DESIGNS["two_stage_opamp"]
        expected = reference.simulate(design)
        for _ in range(2):                     # repeat: ordering must hold
            metrics = parallel.simulate(design)
            assert set(metrics) == set(expected)
            for key in expected:
                assert metrics[key] == expected[key], (backend, key)
        parallel.close()

    def test_corner_problem_through_engine_batch(self):
        problem = make_problem("two_stage_opamp_corners")
        engine = EvaluationEngine(problem, backend="serial")
        problem.attach_engine(engine)
        design = GOOD_DESIGNS["two_stage_opamp"]
        x = problem.design_space.from_dict(design).reshape(1, -1)
        batch = problem.evaluate_batch(np.vstack([x, x]))
        assert len(batch) == 2
        assert batch[0].metrics == batch[1].metrics
        assert engine.cache.stats.as_dict()["hits"] >= 1  # dedup within batch

    def test_dead_design_full_metrics_and_infeasible(self):
        problem = make_problem("two_stage_opamp_corners")
        # Minimum widths, lengths and currents: a dead amplifier at every
        # corner -- it must still yield a complete, infeasible record.
        lows = problem.design_space.bounds[:, 0]
        record = problem.evaluate(lows)
        assert set(problem.metric_names) <= set(record.metrics)
        assert not record.feasible


class TestCornerStudySpec:
    def test_problem_options_roundtrip_and_build(self):
        from repro.study import StudySpec
        spec = StudySpec(
            optimizer="rs", circuit="two_stage_opamp_corners",
            n_simulations=2, n_init=2,
            problem_options={"corners": [
                {"name": "nominal"},
                {"name": "hot", "process": "ss", "temperature": 125.0,
                 "vdd_scale": 0.9}]})
        rebuilt = StudySpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        problem = rebuilt.build_problem()
        assert len(problem.corners) == 2
        assert problem.name == "two_stage_opamp_corners_180nm"

    def test_quick_corner_study_runs_and_closes_pools(self, monkeypatch):
        from repro.study import Study, StudySpec
        closed = {"n": 0}
        from repro.bench import CornerSweep
        real_close = CornerSweep.close

        def counting_close(self):
            closed["n"] += 1
            real_close(self)

        monkeypatch.setattr(CornerSweep, "close", counting_close)
        spec = StudySpec(
            optimizer="rs", circuit="two_stage_opamp_corners",
            n_simulations=3, n_init=3, seed=0,
            problem_options={"corners": [
                {"name": "nominal"},
                {"name": "hot", "process": "ss", "temperature": 125.0,
                 "vdd_scale": 0.9}]})
        result = Study(spec).run()
        assert result.n_simulations >= 3
        assert "gain" in result.history.evaluations[0].metrics
        assert "i_total_nominal" in result.history.evaluations[0].metrics
        # Study.run must release the corner fan-out pool with the engine.
        assert closed["n"] >= 1


class TestCornerSweepLifecycle:
    def test_context_manager_closes_pool(self):
        from repro.bench import CornerSweep, nominal_corner
        with CornerSweep([nominal_corner()], backend="thread") as sweep:
            sweep.backend.map(abs, [1, -2])
            assert sweep._backend is not None
        assert sweep._backend is None

    def test_leaked_pool_fails_loudly(self):
        # Regression: before the BackendOwner lifecycle, a CornerSweep whose
        # owner skipped close() leaked its pool silently; now the leak warns
        # (and `python -W error::ResourceWarning` turns it into a failure).
        from repro.bench import CornerSweep, nominal_corner
        sweep = CornerSweep([nominal_corner()], backend="thread")
        sweep.backend.map(abs, [1, -2])
        with pytest.warns(ResourceWarning, match="live 'thread' worker pool"):
            sweep.__del__()
        sweep.close()

    def test_closed_and_serial_sweeps_do_not_warn(self):
        import warnings as warnings_module
        from repro.bench import CornerSweep, nominal_corner
        closed = CornerSweep([nominal_corner()], backend="thread")
        closed.backend.map(abs, [1])
        closed.close()
        serial = CornerSweep([nominal_corner()])
        serial.backend.map(abs, [1])
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            closed.__del__()
            serial.__del__()

    def test_pickled_sweep_rebuilds_lazily(self):
        import pickle
        from repro.bench import CornerSweep, nominal_corner
        sweep = CornerSweep([nominal_corner()], backend="thread")
        sweep.backend.map(abs, [1])
        clone = pickle.loads(pickle.dumps(sweep))
        assert clone._backend is None
        assert clone.backend.map(abs, [-3]) == [3]
        clone.close()
        sweep.close()
