"""Bit-equivalence suite for batched transient analysis.

``transient_analysis_batch`` exists purely for throughput: every design in
a batch must reproduce its serial ``transient_analysis`` run **bit for
bit** -- accepted timepoints, waveforms, accept/reject counters, Newton
iteration totals, and even the exception type and message when a design
fails.  This suite enforces that over every registry circuit (good and
random, often non-convergent designs), at batch sizes 1 / 8 / 64, with
mixed per-design temperatures, on the dense and forced-sparse solver
paths, and through the :class:`~repro.bench.BatchSimulator` TranSpec
integration.  It also unit-tests the sparse pattern lock that makes the
shared symbolic analysis safe.
"""

import warnings

import numpy as np
import pytest

from repro.bench import BatchSimulator, Simulator
from repro.circuits import make_problem
from repro.errors import ConvergenceError
from repro.spice import (
    Capacitor,
    Circuit,
    Resistor,
    SparseBatchStamper,
    SparseStamper,
    StepWaveform,
    VoltageSource,
    dc_operating_point,
    transient_analysis,
    transient_analysis_batch,
    transient_operating_point,
    transient_operating_point_batch,
)

GOOD_DESIGNS = {
    "two_stage_opamp": dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6,
                            l_load=0.5e-6, w_out=60e-6, l_out=0.3e-6,
                            c_comp=2e-12, r_zero=2e3, i_bias1=20e-6,
                            i_bias2=100e-6),
    "two_stage_opamp_settling": dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6,
                                     l_load=0.5e-6, w_out=60e-6, l_out=0.3e-6,
                                     c_comp=2e-12, r_zero=2e3, i_bias1=20e-6,
                                     i_bias2=100e-6),
    "three_stage_opamp": dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6,
                              l_load=0.5e-6, w_mid=30e-6, l_mid=0.35e-6,
                              w_out=80e-6, l_out=0.25e-6, c_m1=2e-12,
                              c_m2=0.5e-12, i_bias1=10e-6, i_bias23=80e-6),
    "bandgap": dict(r_ptat=100e3, r_out=600e3, w_mirror=10e-6, l_mirror=1e-6,
                    w_amp_in=5e-6, l_amp_in=0.5e-6, i_amp=1e-6,
                    area_ratio=8.0),
}

ALL_CIRCUITS = sorted(GOOD_DESIGNS)

#: Short analysis window: a few hundred controller steps per design keeps
#: the full-registry sweeps fast while still exercising BE/trap switching,
#: LTE rejections and breakpoint landings.
T_STOP = 2e-7


def _designs(problem, name, n_random, seed=11):
    """The good design plus ``n_random`` space samples (some non-convergent)."""
    rng = np.random.default_rng(seed)
    rows = problem.design_space.sample(n_random, rng=rng)
    return [GOOD_DESIGNS[name]] + [problem.design_space.as_dict(row)
                                   for row in rows]


def _serial_outcomes(builder, designs, t_stop=T_STOP, **kwargs):
    """Serial reference: one fresh build and run per design."""
    outcomes = []
    for design in designs:
        try:
            outcomes.append(transient_analysis(builder(design), t_stop,
                                               **kwargs))
        except Exception as exc:  # noqa: BLE001 -- compared against batch
            outcomes.append(exc)
    return outcomes


def assert_tran_identical(serial, batched):
    if isinstance(serial, Exception) or isinstance(batched, Exception):
        assert type(serial) is type(batched)
        assert str(serial) == str(batched)
        return
    assert np.array_equal(serial.times, batched.times)
    assert serial.node_voltages.keys() == batched.node_voltages.keys()
    for node in serial.node_voltages:
        assert np.array_equal(serial.node_voltages[node],
                              batched.node_voltages[node])
    assert serial.n_accepted == batched.n_accepted
    assert serial.n_rejected == batched.n_rejected
    assert serial.n_newton_iterations == batched.n_newton_iterations


# ===================================================================== #
# batched transient vs serial transient                                 #
# ===================================================================== #
class TestBatchedTransient:
    @pytest.mark.parametrize("name", ALL_CIRCUITS)
    def test_registry_circuits_bit_identical(self, name):
        problem = make_problem(name)
        designs = _designs(problem, name, n_random=7)  # B = 8
        for key, builder in problem.bench.builders.items():
            serial = _serial_outcomes(builder, designs)
            # Fresh builds: a separate batch over its own circuits proves
            # independence from serial-solve side effects and build order.
            batched = transient_analysis_batch(
                [builder(design) for design in designs], T_STOP,
                return_errors=True)
            assert len(serial) == len(batched)
            for outcome_serial, outcome_batched in zip(serial, batched):
                assert_tran_identical(outcome_serial, outcome_batched)

    def test_batch_of_one_matches_serial(self):
        problem = make_problem("two_stage_opamp_settling")
        builder = problem.bench.builders["main"]
        design = GOOD_DESIGNS["two_stage_opamp_settling"]
        [serial] = _serial_outcomes(builder, [design])
        [batched] = transient_analysis_batch([builder(design)], T_STOP)
        assert_tran_identical(serial, batched)

    def test_batch_of_64_bit_identical(self):
        problem = make_problem("two_stage_opamp_settling")
        builder = problem.bench.builders["main"]
        designs = _designs(problem, "two_stage_opamp_settling", n_random=63,
                           seed=3)
        t_stop = 5e-8
        serial = _serial_outcomes(builder, designs, t_stop=t_stop)
        batched = transient_analysis_batch(
            [builder(design) for design in designs], t_stop,
            return_errors=True)
        for outcome_serial, outcome_batched in zip(serial, batched):
            assert_tran_identical(outcome_serial, outcome_batched)

    def test_mixed_per_design_temperatures(self):
        problem = make_problem("two_stage_opamp_settling")
        builder = problem.bench.builders["main"]
        design = GOOD_DESIGNS["two_stage_opamp_settling"]
        temperatures = np.array([-40.0, 27.0, 85.0, 125.0])
        serial = []
        for temp in temperatures:
            serial.append(transient_analysis(builder(design), T_STOP,
                                             temperature=float(temp)))
        batched = transient_analysis_batch(
            [builder(design) for _ in temperatures], T_STOP,
            temperature=temperatures)
        for outcome_serial, outcome_batched in zip(serial, batched):
            assert_tran_identical(outcome_serial, outcome_batched)
        # Distinct temperatures must actually produce distinct waveforms.
        assert not np.array_equal(batched[0].voltage("out"),
                                  batched[3].voltage("out"))

    def test_first_error_raises_without_return_errors(self):
        problem = make_problem("three_stage_opamp")
        builder = problem.bench.builders["main"]
        designs = _designs(problem, "three_stage_opamp", n_random=3, seed=3)
        serial = _serial_outcomes(builder, designs)
        failing = [outcome for outcome in serial
                   if isinstance(outcome, Exception)]
        assert failing, "expected at least one non-convergent random design"
        with pytest.raises(ConvergenceError) as excinfo:
            transient_analysis_batch(
                [builder(design) for design in designs], T_STOP)
        first = next(o for o in serial if isinstance(o, Exception))
        assert str(excinfo.value) == str(first)

    def test_forced_sparse_bit_identical(self):
        problem = make_problem("two_stage_opamp_settling")
        builder = problem.bench.builders["main"]
        designs = _designs(problem, "two_stage_opamp_settling", n_random=3)
        serial = _serial_outcomes(builder, designs, solver="sparse")
        batched = transient_analysis_batch(
            [builder(design) for design in designs], T_STOP,
            solver="sparse", return_errors=True)
        for outcome_serial, outcome_batched in zip(serial, batched):
            assert_tran_identical(outcome_serial, outcome_batched)

    def test_shared_symbolic_matches_to_roundoff(self):
        problem = make_problem("two_stage_opamp_settling")
        builder = problem.bench.builders["main"]
        design = GOOD_DESIGNS["two_stage_opamp_settling"]
        circuits = [builder(design) for _ in range(3)]
        exact = transient_analysis_batch(
            [builder(design) for _ in range(3)], T_STOP, solver="sparse")
        shared = transient_analysis_batch(circuits, T_STOP, solver="sparse",
                                          shared_symbolic=True)
        for result_exact, result_shared in zip(exact, shared):
            for node in result_exact.node_voltages:
                np.testing.assert_allclose(
                    result_shared.voltage(node), result_exact.voltage(node),
                    rtol=1e-6, atol=1e-9)

    def test_temperature_disagreeing_with_ops_warns_and_op_wins(self):
        problem = make_problem("two_stage_opamp_settling")
        builder = problem.bench.builders["main"]
        design = GOOD_DESIGNS["two_stage_opamp_settling"]
        circuits = [builder(design) for _ in range(2)]
        ops = transient_operating_point_batch(circuits, temperature=85.0)
        with pytest.warns(DeprecationWarning):
            batched = transient_analysis_batch(circuits, T_STOP,
                                               temperature=27.0,
                                               operating_points=ops)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            serial = transient_analysis(builder(design), T_STOP,
                                        temperature=27.0,
                                        operating_point=ops[0])
        assert_tran_identical(serial, batched[0])

    def test_operating_point_batch_matches_serial_and_restores_dc(self):
        problem = make_problem("two_stage_opamp_settling")
        builder = problem.bench.builders["main"]
        design = GOOD_DESIGNS["two_stage_opamp_settling"]
        circuits = [builder(design) for _ in range(3)]
        dc_before = [[device.dc for device in circuit.devices
                      if hasattr(device, "dc")] for circuit in circuits]
        batched = transient_operating_point_batch(circuits)
        dc_after = [[device.dc for device in circuit.devices
                     if hasattr(device, "dc")] for circuit in circuits]
        assert dc_before == dc_after
        serial = transient_operating_point(builder(design))
        for op in batched:
            assert op.converged == serial.converged
            assert op.iterations == serial.iterations
            assert np.array_equal(op.voltages, serial.voltages)

    def test_empty_batch(self):
        assert transient_analysis_batch([], 1e-6) == []

    def test_invalid_t_stop_rejected(self):
        problem = make_problem("two_stage_opamp_settling")
        builder = problem.bench.builders["main"]
        design = GOOD_DESIGNS["two_stage_opamp_settling"]
        with pytest.raises(ValueError):
            transient_analysis_batch([builder(design)], 0.0)


# ===================================================================== #
# sparse pattern lock                                                   #
# ===================================================================== #
def _ladder(n_sections, r_scale):
    """An RC ladder driven by a step -- linear, arbitrary-size, transient."""
    circuit = Circuit(f"ladder{n_sections}")
    circuit.add(VoltageSource("VIN", "n0", "0", dc=0.0,
                              waveform=StepWaveform(0.0, 1.0, delay=1e-8,
                                                    rise_time=1e-9)))
    for i in range(n_sections):
        circuit.add(Resistor(f"R{i}", f"n{i}", f"n{i + 1}", 1e3 * r_scale))
        circuit.add(Capacitor(f"C{i}", f"n{i + 1}", "0", 1e-12))
    return circuit


class TestSparsePatternLock:
    def test_ladder_forced_sparse_bit_identical(self):
        scales = [0.5, 1.0, 2.0, 4.0]
        t_stop = 1e-7
        serial = [transient_analysis(_ladder(12, scale), t_stop,
                                     solver="sparse") for scale in scales]
        batched = transient_analysis_batch(
            [_ladder(12, scale) for scale in scales], t_stop,
            solver="sparse")
        for outcome_serial, outcome_batched in zip(serial, batched):
            assert_tran_identical(outcome_serial, outcome_batched)

    def test_locked_reassembly_matches_serial_stamper(self):
        circuits = [_ladder(6, scale) for scale in (1.0, 3.0)]
        for circuit in circuits:
            circuit.ensure_indices()
        first = circuits[0]
        temperatures = np.array([27.0, 27.0])
        batch = SparseBatchStamper(2, first.n_nodes, first.n_branches)
        rng = np.random.default_rng(0)
        for assembly in range(3):
            batch.reset()
            voltages = rng.standard_normal((2, first.n_nodes
                                            + first.n_branches))
            for position in range(len(first.devices)):
                batch.stamp_device_serial(
                    [circuit.devices[position] for circuit in circuits],
                    voltages, temperatures)
            batch.add_gmin(1e-12)
            assert batch.pattern_locked == (assembly > 0)
            for b, circuit in enumerate(circuits):
                reference = SparseStamper(first.n_nodes, first.n_branches)
                for device in circuit.devices:
                    device.stamp_dc(reference, voltages[b], 27.0)
                reference.add_gmin(1e-12)
                np.testing.assert_array_equal(batch.solve_design(b),
                                              reference.solve())

    def _locked_stamper(self):
        circuits = [_ladder(4, 1.0), _ladder(4, 2.0)]
        for circuit in circuits:
            circuit.ensure_indices()
        first = circuits[0]
        temperatures = np.array([27.0, 27.0])
        batch = SparseBatchStamper(2, first.n_nodes, first.n_branches)
        voltages = np.zeros((2, first.n_nodes + first.n_branches))

        def stamp_all():
            for position in range(len(first.devices)):
                batch.stamp_device_serial(
                    [circuit.devices[position] for circuit in circuits],
                    voltages, temperatures)

        stamp_all()
        batch.add_gmin(1e-12)
        batch.reset()  # locks the pattern
        assert batch.pattern_locked
        return batch, stamp_all

    def test_locked_pattern_divergence_raises(self):
        batch, _ = self._locked_stamper()
        # The first assembly's position 0 is the step source's branch stamp;
        # a node-diagonal entry there diverges from the locked pattern.
        with pytest.raises(ValueError, match="locked pattern"):
            batch.add_entry(batch.n_nodes - 1, batch.n_nodes - 1,
                            np.ones(2))

    def test_incomplete_locked_assembly_rejected(self):
        batch, stamp_all = self._locked_stamper()
        stamp_all()  # ... but no add_gmin: assembly incomplete
        with pytest.raises(ValueError, match="incomplete"):
            batch.solve()


# ===================================================================== #
# BatchSimulator TranSpec routing                                       #
# ===================================================================== #
class TestBatchSimulatorTransient:
    def _problem(self, **kwargs):
        return make_problem("two_stage_opamp_settling", t_stop=4e-7, **kwargs)

    def test_simresults_bit_identical_to_serial(self):
        problem = self._problem()
        designs = _designs(problem, "two_stage_opamp_settling", n_random=5,
                           seed=3)
        serial = [Simulator().run(problem.bench, design)
                  for design in designs]
        batched = BatchSimulator().run(
            [(problem.bench, design) for design in designs])
        assert any(not result.ok for result in serial)  # failures exercised
        for result_serial, result_batched in zip(serial, batched):
            assert type(result_serial) is type(result_batched)
            assert result_serial.ok == result_batched.ok
            assert result_serial.failure == result_batched.failure
            assert result_serial.metrics == result_batched.metrics
            assert result_serial.stats == result_batched.stats
            tran_serial = result_serial.analyses.get("tran")
            tran_batched = result_batched.analyses.get("tran")
            if tran_serial is not None:
                assert_tran_identical(tran_serial, tran_batched)

    def test_mismatched_tran_specs_rejected(self):
        fast = self._problem()
        slow = make_problem("two_stage_opamp_settling", t_stop=8e-7)
        design = GOOD_DESIGNS["two_stage_opamp_settling"]
        with pytest.raises(ValueError, match="transient"):
            BatchSimulator().run([(fast.bench, design), (slow.bench, design)])


# ===================================================================== #
# enriched initial-condition failure messages                           #
# ===================================================================== #
class TestEnrichedInitialConditionMessages:
    """The failed-initial-condition message carries the DC solver state.

    Both transient paths embed ``SolveStats.failure_detail`` from the
    operating point's stats, so a pre-solved non-converged initial
    condition must produce character-identical serial and batched
    messages.
    """

    #: A budget no opamp converges under (see test_batched.py).
    HARD = dict(max_iterations=2, gmin_steps=(1e-12,), rescue=False)

    @staticmethod
    def _circuit():
        problem = make_problem("two_stage_opamp")
        return problem.bench.builders["main"](
            GOOD_DESIGNS["two_stage_opamp"])

    def test_serial_message_carries_solver_state(self):
        circuit = self._circuit()
        op = dc_operating_point(circuit, **self.HARD)
        assert not op.converged
        with pytest.raises(ConvergenceError) as excinfo:
            transient_analysis(circuit, T_STOP, operating_point=op)
        message = str(excinfo.value)
        assert "initial condition" in message
        for token in ("Newton iterations", "residual=", "gmin="):
            assert token in message
        assert message.endswith(op.stats.failure_detail())

    def test_batched_message_identical_to_serial(self):
        op = dc_operating_point(self._circuit(), **self.HARD)
        with pytest.raises(ConvergenceError) as excinfo:
            transient_analysis(self._circuit(), T_STOP, operating_point=op)
        batched = transient_analysis_batch([self._circuit()], T_STOP,
                                           operating_points=[op],
                                           return_errors=True)
        assert type(batched[0]) is ConvergenceError
        assert str(batched[0]) == str(excinfo.value)
