"""Tests for the KATO core: NeukGP, KAT-GP, selective transfer and Algorithm 1."""

import numpy as np
import pytest

from repro.core import (
    KATGP,
    KATO,
    KATOConfig,
    NeukGP,
    NeukMultiOutputGP,
    SelectiveTransfer,
    SourceModel,
    neural_kernel_factory,
)
from repro.errors import NotFittedError
from repro.kernels import NeuralKernel


def _source_dataset(rng, n=40, d_in=3, d_out=2):
    x = rng.uniform(size=(n, d_in))
    y1 = np.sin(4 * x[:, 0]) + x[:, 1]
    y2 = 10.0 * x[:, 2] - 2.0 * x[:, 0]
    return x, np.column_stack([y1, y2][:d_out])


def _target_dataset(rng, n=30, d_in=4, d_out=2):
    # Related but different input/output spaces (one extra input dimension,
    # shifted/scaled outputs) -- the KAT-GP setting.
    x = rng.uniform(size=(n, d_in))
    y1 = 2.0 * np.sin(4 * x[:, 0]) + x[:, 1] + 0.5
    y2 = 5.0 * x[:, 2] - x[:, 0] + 1.0
    return x, np.column_stack([y1, y2][:d_out])


class TestNeukGP:
    def test_neukgp_uses_neural_kernel(self, rng):
        model = NeukGP(input_dim=3, rng=0)
        assert isinstance(model.kernel, NeuralKernel)
        x = rng.uniform(size=(20, 3))
        y = np.sum(x, axis=1)
        model.fit(x, y, n_iters=20)
        mean, var = model.predict(x[:5])
        assert np.all(np.isfinite(mean)) and np.all(var > 0)

    def test_neuk_multioutput(self, rng):
        model = NeukMultiOutputGP(rng=0)
        x = rng.uniform(size=(15, 2))
        model.fit(x, np.column_stack([x[:, 0], x[:, 1] * 2]), n_iters=10)
        assert isinstance(model[0].kernel, NeuralKernel)

    def test_factory_dimensions(self):
        factory = neural_kernel_factory(rng=0)
        assert factory(5).input_dim == 5


class TestSourceModel:
    def test_holds_standardisation(self, rng):
        x, y = _source_dataset(rng)
        source = SourceModel(x, y, train_iters=15)
        assert source.input_dim == 3 and source.output_dim == 2
        assert np.allclose(source.y_mean, y.mean(axis=0))

    def test_standardized_prediction_scale(self, rng):
        from repro.autodiff import Tensor
        x, y = _source_dataset(rng)
        source = SourceModel(x, y, train_iters=20)
        mean, var = source.predict_standardized_tensor(Tensor(x[:10]))
        assert mean.shape == (10, 2)
        assert np.abs(mean.data).max() < 5.0
        assert np.all(var.data > 0)

    def test_metric_names_default(self, rng):
        x, y = _source_dataset(rng)
        assert SourceModel(x, y, train_iters=5).metric_names == [
            "source_metric_0", "source_metric_1"]


class TestKATGP:
    def _fitted(self, rng, n_target=30, n_iters=60):
        xs, ys = _source_dataset(rng, n=40)
        source = SourceModel(xs, ys, train_iters=20)
        xt, yt = _target_dataset(rng, n=n_target)
        model = KATGP(source, target_input_dim=4, target_output_dim=2, rng=0)
        model.fit(xt, yt, n_iters=n_iters)
        return model, xt, yt

    def test_predict_shapes_and_finiteness(self, rng):
        model, xt, _ = self._fitted(rng)
        mean, var = model.predict(xt[:7])
        assert mean.shape == (7, 2) and var.shape == (7, 2)
        assert np.all(np.isfinite(mean)) and np.all(var > 0)

    def test_training_reduces_loss(self, rng):
        model, _, _ = self._fitted(rng)
        history = model.training_history_
        assert len(history) > 5
        assert history[-1] < history[0]

    def test_fit_learns_target_scale(self, rng):
        model, xt, yt = self._fitted(rng, n_target=40, n_iters=120)
        mean, _ = model.predict(xt)
        # The aligned model should track the target data far better than a
        # constant predictor at the mean.
        residual = np.mean((mean - yt) ** 2)
        baseline = np.mean((yt - yt.mean(axis=0)) ** 2)
        assert residual < baseline

    def test_views_split_columns(self, rng):
        model, xt, _ = self._fitted(rng)
        objective_mean, objective_var = model.objective_view().predict(xt[:4])
        assert objective_mean.shape == (4,)
        constraint_mean, constraint_var = model.constraint_view().predict(xt[:4])
        assert constraint_mean.shape == (4, 1)
        full_mean, _ = model.predict(xt[:4])
        assert np.allclose(objective_mean, full_mean[:, 0])

    def test_unfitted_predict_raises(self, rng):
        xs, ys = _source_dataset(rng)
        source = SourceModel(xs, ys, train_iters=5)
        model = KATGP(source, target_input_dim=4, target_output_dim=2, rng=0)
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((1, 4)))

    def test_dimension_validation(self, rng):
        xs, ys = _source_dataset(rng)
        source = SourceModel(xs, ys, train_iters=5)
        model = KATGP(source, target_input_dim=4, target_output_dim=2, rng=0)
        with pytest.raises(Exception):
            model.fit(np.zeros((5, 3)), np.zeros((5, 2)))

    def test_encoder_bridges_different_input_dims(self, rng):
        model, _, _ = self._fitted(rng)
        assert model.encoder.in_features == 4
        assert model.encoder.out_features == 3


class TestSelectiveTransfer:
    def test_initial_probabilities_proportional(self):
        selector = SelectiveTransfer([200, 50], rng=0)
        assert np.allclose(selector.probabilities(), [0.8, 0.2])

    def test_allocation_sums_to_batch(self):
        selector = SelectiveTransfer([200, 50], rng=0)
        counts = selector.allocate(8)
        assert counts.sum() == 8
        assert np.all(counts >= 1)

    def test_allocation_single_slot(self):
        selector = SelectiveTransfer([1, 1000], rng=0)
        assert selector.allocate(1).sum() == 1

    def test_update_shifts_weights(self):
        selector = SelectiveTransfer([10, 10], rng=0)
        selector.update(np.array([3.0, 0.0]))
        assert selector.weights[0] == 13.0
        assert selector.probabilities()[0] > 0.5

    def test_update_from_evaluations_counts_improvements(self):
        selector = SelectiveTransfer([10, 10], rng=0)
        labels = np.array([0, 0, 1, 1])
        objectives = np.array([1.0, 5.0, 0.5, 4.0])     # minimisation, incumbent 2.0
        improvements = selector.update_from_evaluations(labels, objectives, 2.0,
                                                        minimize=True)
        assert improvements.tolist() == [1.0, 1.0]

    def test_select_from_respects_counts(self, rng):
        selector = SelectiveTransfer([90, 10], rng=0)
        sets = [rng.uniform(size=(20, 3)), rng.uniform(size=(20, 3))]
        designs, labels = selector.select_from(sets, batch_size=10)
        assert designs.shape == (10, 3)
        assert (labels == 0).sum() >= (labels == 1).sum()

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            SelectiveTransfer([5.0])
        with pytest.raises(ValueError):
            SelectiveTransfer([1.0, -1.0])
        selector = SelectiveTransfer([1.0, 1.0])
        with pytest.raises(ValueError):
            selector.update(np.array([1.0]))
        with pytest.raises(ValueError):
            selector.update(np.array([-1.0, 0.0]))
        with pytest.raises(ValueError):
            selector.allocate(0)

    def test_history_recorded(self):
        selector = SelectiveTransfer([2.0, 2.0])
        selector.update(np.array([1.0, 0.0]))
        assert len(selector.history) == 2


class TestKATOOptimizer:
    def _quick_config(self):
        return KATOConfig(batch_size=3, surrogate_train_iters=10, kat_train_iters=30,
                          pop_size=16, n_generations=5)

    def test_unconstrained_improves(self, quadratic_problem):
        kato = KATO(quadratic_problem, config=self._quick_config(), rng=0)
        history = kato.optimize(n_simulations=21, n_init=9)
        curve = history.best_curve(constrained=False)
        assert curve[-1] >= curve[8]
        assert curve[-1] > -0.2

    def test_constrained_without_transfer(self, constrained_problem):
        kato = KATO(constrained_problem, config=self._quick_config(), rng=0)
        history = kato.optimize(n_simulations=21, n_init=12)
        assert len(history) >= 21
        assert kato.transfer_report()["weights"] is None

    def test_constrained_with_transfer_updates_weights(self, constrained_problem, rng):
        # Source: a related toy problem sharing the metric structure.
        source_x = rng.uniform(size=(30, 3))
        source_y = np.column_stack([
            source_x.sum(axis=1) * 1.2,
            source_x[:, 0] + source_x[:, 1],
            (source_x ** 2).sum(axis=1),
        ])
        source = SourceModel(source_x, source_y, train_iters=10)
        kato = KATO(constrained_problem, source=source, config=self._quick_config(), rng=0)
        history = kato.optimize(n_simulations=24, n_init=12)
        report = kato.transfer_report()
        assert report["transfer"]
        assert len(report["weights"]) == 2
        # Weights grow only through Eq. 14 updates and never shrink.
        assert all(w >= 1.0 for w in report["weights"])
        assert len(history) >= 24

    def test_rbf_kernel_option(self, quadratic_problem):
        config = KATOConfig(batch_size=2, surrogate_train_iters=5, pop_size=16,
                            n_generations=3, use_neural_kernel=False)
        kato = KATO(quadratic_problem, config=config, rng=0)
        history = kato.optimize(n_simulations=12, n_init=6)
        assert len(history) >= 12

    def test_fit_transfer_requires_source(self, quadratic_problem):
        kato = KATO(quadratic_problem, config=self._quick_config(), rng=0)
        with pytest.raises(RuntimeError):
            kato.fit_transfer_surrogate()
