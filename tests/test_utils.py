"""Tests for repro.utils: validation, scaling, statistics and RNG handling."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import NotFittedError, ShapeError
from repro.utils import (
    MinMaxScaler,
    StandardScaler,
    as_rng,
    check_matrix,
    check_positive,
    check_same_length,
    check_vector,
    norm_cdf,
    norm_logpdf,
    norm_pdf,
    running_best,
    spawn_rngs,
    summarize_runs,
)


class TestRandom:
    def test_as_rng_from_int_is_deterministic(self):
        assert as_rng(3).uniform() == as_rng(3).uniform()

    def test_as_rng_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_rng(generator) is generator

    def test_as_rng_none(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_spawn_rngs_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_spawn_rngs_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert a.uniform() != b.uniform()

    def test_spawn_rngs_reproducible(self):
        first = [g.uniform() for g in spawn_rngs(42, 3)]
        second = [g.uniform() for g in spawn_rngs(42, 3)]
        assert first == second

    def test_spawn_rngs_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(1), 2)
        assert len(children) == 2


class TestValidation:
    def test_check_array_rejects_nan(self):
        with pytest.raises(ShapeError):
            check_array_helper = check_vector([1.0, np.nan])

    def test_check_vector_scalar_promoted(self):
        assert check_vector(3.0).shape == (1,)

    def test_check_vector_rejects_matrix(self):
        with pytest.raises(ShapeError):
            check_vector(np.ones((2, 2)))

    def test_check_matrix_promotes_vector(self):
        assert check_matrix([1.0, 2.0]).shape == (1, 2)

    def test_check_matrix_wrong_columns(self):
        with pytest.raises(ShapeError):
            check_matrix(np.ones((3, 2)), n_cols=4)

    def test_check_matrix_rejects_3d(self):
        with pytest.raises(ShapeError):
            check_matrix(np.ones((2, 2, 2)))

    def test_check_same_length(self):
        check_same_length([1, 2], [3, 4])
        with pytest.raises(ShapeError):
            check_same_length([1, 2], [3])

    def test_check_positive(self):
        assert check_positive(2.5) == 2.5
        with pytest.raises(ValueError):
            check_positive(0.0)
        with pytest.raises(ValueError):
            check_positive(-1.0)


class TestStandardScaler:
    def test_roundtrip(self, rng):
        x = rng.normal(5.0, 3.0, size=(50, 4))
        scaler = StandardScaler().fit(x)
        assert np.allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_transform_statistics(self, rng):
        x = rng.normal(2.0, 4.0, size=(200, 2))
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_is_safe(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = StandardScaler().fit_transform(x)
        assert np.all(np.isfinite(z))

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_variance_inverse_transform(self, rng):
        x = rng.normal(0.0, 5.0, size=(40, 2))
        scaler = StandardScaler().fit(x)
        var = np.ones((3, 2))
        restored = scaler.inverse_transform_variance(var)
        assert np.allclose(restored, scaler.scale_**2)


class TestMinMaxScaler:
    def test_roundtrip(self, rng):
        x = rng.uniform(-3, 7, size=(30, 3))
        scaler = MinMaxScaler().fit(x)
        assert np.allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_range_is_unit(self, rng):
        x = rng.uniform(-3, 7, size=(30, 3))
        z = MinMaxScaler().fit_transform(x)
        assert z.min() >= 0.0 and z.max() <= 1.0

    def test_explicit_bounds(self):
        scaler = MinMaxScaler(lower=[0.0], upper=[10.0])
        assert np.allclose(scaler.transform([[5.0]]), [[0.5]])

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform([[1.0]])


class TestStats:
    def test_norm_pdf_peak(self):
        assert norm_pdf(0.0) == pytest.approx(1.0 / np.sqrt(2 * np.pi))

    def test_norm_cdf_symmetry(self):
        assert norm_cdf(0.0) == pytest.approx(0.5)
        assert norm_cdf(1.0) + norm_cdf(-1.0) == pytest.approx(1.0)

    def test_norm_cdf_matches_scipy(self):
        from scipy.stats import norm
        z = np.linspace(-4, 4, 17)
        assert np.allclose(norm_cdf(z), norm.cdf(z), atol=1e-12)

    def test_norm_logpdf_matches_scipy(self):
        from scipy.stats import norm
        values = norm_logpdf([1.0, 2.0], mean=0.5, var=2.0)
        expected = norm.logpdf([1.0, 2.0], loc=0.5, scale=np.sqrt(2.0))
        assert np.allclose(values, expected)

    def test_running_best_maximize(self):
        assert np.allclose(running_best([1, 3, 2, 5, 4]), [1, 3, 3, 5, 5])

    def test_running_best_minimize(self):
        assert np.allclose(running_best([3, 1, 2, 0], minimize=True), [3, 1, 1, 0])

    def test_running_best_empty(self):
        assert running_best([]).size == 0

    def test_summarize_runs(self):
        stats = summarize_runs([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(stats["mean"], [2.0, 3.0])
        assert np.allclose(stats["min"], [1.0, 2.0])
        assert np.allclose(stats["max"], [3.0, 4.0])

    def test_summarize_runs_rejects_ragged(self):
        with pytest.raises(ValueError):
            summarize_runs([np.ones(3)])  # 1 run is fine shape-wise
            summarize_runs([[1.0], [1.0, 2.0]])

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=30))
    def test_running_best_is_monotone(self, values):
        curve = running_best(values)
        assert np.all(np.diff(curve) >= 0)

    @given(st.floats(-6, 6))
    def test_norm_cdf_in_unit_interval(self, z):
        assert 0.0 <= float(norm_cdf(z)) <= 1.0
