"""Concurrency hammer for the shared :class:`DesignCache`.

The cache is shared between engines whose coordinating threads run
concurrently (process-pool backends, queue workers re-leasing jobs), so its
counters and entry map must never lose updates under contention.  These
tests pound one cache from many threads through every mutating path --
``get`` / ``put`` / ``record_saved_duplicate`` -- and then check *counter
conservation*: every thread tallies its own outcomes locally, and the
cache's ``CacheStats`` (and, when enabled, the telemetry registry fed from
the same call sites) must agree with the per-thread sums exactly.  A single
lost increment or torn LRU update fails the test.
"""

import threading

import numpy as np
import pytest

from repro import telemetry
from repro.bo.problem import EvaluatedDesign
from repro.engine.cache import DesignCache

N_THREADS = 8
OPS_PER_THREAD = 400


def _evaluation(value: float) -> EvaluatedDesign:
    return EvaluatedDesign(x=np.array([value]), metrics={"f": value},
                           objective=value, feasible=True)


def _hammer(cache: DesignCache, barrier: threading.Barrier, seed: int,
            keyspace: int, totals: list) -> None:
    """One worker: a deterministic mix of lookups, inserts and duplicates."""
    rng = np.random.default_rng(seed)
    hits = misses = puts = duplicates = 0
    barrier.wait()
    for i in range(OPS_PER_THREAD):
        slot = int(rng.integers(keyspace))
        key = DesignCache.key_for("hammer", np.array([float(slot)]))
        if cache.get(key) is None:
            misses += 1
            cache.put(key, _evaluation(float(slot)))
            puts += 1
        else:
            hits += 1
        if i % 7 == 0:
            cache.record_saved_duplicate()
            duplicates += 1
    totals.append((hits, misses, puts, duplicates))


def _run_hammer(cache: DesignCache, keyspace: int):
    barrier = threading.Barrier(N_THREADS)
    totals: list = []
    threads = [threading.Thread(target=_hammer,
                                args=(cache, barrier, 1000 + t, keyspace,
                                      totals))
               for t in range(N_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(totals) == N_THREADS  # no worker died
    hits = sum(t[0] for t in totals)
    misses = sum(t[1] for t in totals)
    puts = sum(t[2] for t in totals)
    duplicates = sum(t[3] for t in totals)
    return hits, misses, puts, duplicates


class TestCacheHammer:
    def test_counter_conservation_under_contention(self):
        cache = DesignCache(maxsize=None)
        hits, misses, puts, duplicates = _run_hammer(cache, keyspace=64)
        # Every increment the workers performed must have landed.
        assert cache.stats.hits == hits + duplicates
        assert cache.stats.misses == misses
        assert cache.stats.lookups == N_THREADS * OPS_PER_THREAD + duplicates
        assert cache.stats.evictions == 0
        # Unbounded cache with a 64-slot keyspace: one entry per touched
        # slot, no more (a torn OrderedDict update would corrupt this).
        assert len(cache) <= 64
        assert misses >= len(cache)  # every entry came from a counted miss

    def test_eviction_conservation_with_small_cache(self):
        cache = DesignCache(maxsize=16)
        hits, misses, puts, duplicates = _run_hammer(cache, keyspace=128)
        assert cache.stats.hits == hits + duplicates
        assert cache.stats.misses == misses
        assert len(cache) <= 16
        # Inserts either still occupy a slot, were evicted, or overwrote a
        # racing insert of the same key; evictions can never exceed puts.
        assert cache.stats.evictions <= puts
        assert puts - cache.stats.evictions >= len(cache)

    def test_telemetry_counters_match_stats(self):
        """The registry is fed outside the cache lock; counts still conserve."""
        telemetry.reset()
        telemetry.enable()
        try:
            cache = DesignCache(maxsize=32)
            _run_hammer(cache, keyspace=96)
            counters = telemetry.snapshot()["counters"]
            assert counters.get("repro_cache_hits_total", 0) == cache.stats.hits
            assert counters.get("repro_cache_misses_total", 0) == cache.stats.misses
            assert counters.get("repro_cache_evictions_total", 0) == cache.stats.evictions
        finally:
            telemetry.disable()
            telemetry.reset()

    def test_stats_remain_plain_ints(self):
        cache = DesignCache()
        cache.get("missing")
        cache.put("k", _evaluation(1.0))
        cache.get("k")
        cache.record_saved_duplicate()
        for value in (cache.stats.hits, cache.stats.misses,
                      cache.stats.evictions):
            assert type(value) is int
        assert cache.stats.as_dict()["hit_rate"] == pytest.approx(2 / 3)
