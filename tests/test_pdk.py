"""Tests for the synthetic technology cards."""

import pytest

from repro.pdk import Technology, get_technology, make_180nm, make_40nm


class TestTechnologyCards:
    def test_registry_lookup(self):
        assert get_technology("180nm").name == "180nm"
        assert get_technology("40NM").name == "40nm"
        with pytest.raises(KeyError):
            get_technology("7nm")

    def test_supply_voltages_differ(self):
        assert make_180nm().vdd > make_40nm().vdd

    def test_40nm_devices_are_faster_but_leakier(self):
        old, new = make_180nm(), make_40nm()
        assert new.nmos.kp > old.nmos.kp
        assert new.nmos.lambda_per_um > old.nmos.lambda_per_um
        assert new.min_length < old.min_length

    def test_common_mode_is_half_supply(self):
        technology = make_180nm()
        assert technology.common_mode == pytest.approx(technology.vdd / 2)

    def test_clamping(self):
        technology = make_180nm()
        assert technology.clamp_length(1e-9) == technology.min_length
        assert technology.clamp_length(1.0) == technology.max_length
        assert technology.clamp_width(1.0) == technology.max_width

    def test_describe_keys(self):
        info = make_40nm().describe()
        assert {"name", "vdd", "nmos_vth", "min_length_nm"} <= set(info)

    def test_polarities(self):
        technology = make_180nm()
        assert technology.nmos.polarity == "nmos"
        assert technology.pmos.polarity == "pmos"

    def test_technology_is_frozen(self):
        technology = make_180nm()
        with pytest.raises(Exception):
            technology.vdd = 5.0
