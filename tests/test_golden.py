"""Golden-solution tests: every analysis checked against a closed form.

Each analysis engine is validated against an independent reference:

* transient -- RC and RL step responses against the analytic exponential,
  and series-RLC ringing against the underdamped closed form;
* AC -- the vectorized stacked-frequency path cross-checked against the
  per-frequency reference loop for every circuit in the registry;
* DC -- a swept diode divider against the Shockley equation;
* noise -- a resistive divider against 4kT(R1 || R2), RC integrated noise
  against kT/C, and the adjoint source transfers against direct forward
  injections on a registry op-amp.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import available_problems, make_problem
from repro.spice import (
    Capacitor,
    Circuit,
    Diode,
    Inductor,
    Resistor,
    StepWaveform,
    VoltageSource,
    ac_analysis,
    dc_operating_point,
    dc_sweep,
    noise_analysis,
    transient_analysis,
)


class TestTransientGolden:
    """Transient solver vs. analytic linear-network step responses."""

    def test_rc_step_matches_exponential(self):
        """Acceptance bar: <0.1% max error at the default tolerances."""
        tau = 1e-6
        circuit = Circuit("rc_golden")
        circuit.add(VoltageSource("VIN", "in", "0", dc=0.0,
                                  waveform=StepWaveform(0.0, 1.0)))
        circuit.add(Resistor("R1", "in", "out", 1e3))
        circuit.add(Capacitor("C1", "out", "0", 1e-9))
        result = transient_analysis(circuit, 5 * tau, observe=["out"])
        analytic = 1.0 - np.exp(-result.times / tau)
        assert np.max(np.abs(result.voltage("out") - analytic)) < 1e-3
        # The grid covers the whole window with exact endpoints.
        assert result.times[0] == 0.0
        assert result.times[-1] == pytest.approx(5 * tau, rel=1e-12)

    def test_rl_step_matches_exponential(self):
        """Series V-R-L: the midpoint node decays as exp(-t*R/L)."""
        resistance, inductance = 1e3, 1e-3
        tau = inductance / resistance
        circuit = Circuit("rl_golden")
        circuit.add(VoltageSource("VIN", "in", "0", dc=0.0,
                                  waveform=StepWaveform(0.0, 1.0)))
        circuit.add(Resistor("R1", "in", "mid", resistance))
        circuit.add(Inductor("L1", "mid", "0", inductance))
        result = transient_analysis(circuit, 5 * tau, observe=["mid"])
        # Skip t=0: the source is discontinuous there and the first sample is
        # the pre-step DC initial condition by construction.
        analytic = np.exp(-result.times[1:] / tau)
        assert np.max(np.abs(result.voltage("mid")[1:] - analytic)) < 1e-3

    def test_rlc_ringing_matches_closed_form(self):
        """Underdamped series RLC step response, five ringing periods."""
        resistance, inductance, capacitance = 100.0, 1e-3, 1e-9
        alpha = resistance / (2 * inductance)
        omega0 = 1.0 / np.sqrt(inductance * capacitance)
        omega_d = np.sqrt(omega0**2 - alpha**2)
        circuit = Circuit("rlc_golden")
        circuit.add(VoltageSource("VIN", "in", "0", dc=0.0,
                                  waveform=StepWaveform(0.0, 1.0)))
        circuit.add(Resistor("R1", "in", "n1", resistance))
        circuit.add(Inductor("L1", "n1", "n2", inductance))
        circuit.add(Capacitor("C1", "n2", "0", capacitance))
        t_stop = 5 * 2 * np.pi / omega_d
        result = transient_analysis(circuit, t_stop, observe=["n2"],
                                    reltol=1e-5)
        t = result.times
        analytic = 1.0 - np.exp(-alpha * t) * (np.cos(omega_d * t)
                                               + alpha / omega_d * np.sin(omega_d * t))
        assert np.max(np.abs(result.voltage("n2") - analytic)) < 1e-2
        # The ringing must actually be resolved, not smoothed away: the
        # first overshoot peaks at 1 + exp(-alpha*pi/omega_d).
        expected_peak = 1.0 + np.exp(-alpha * np.pi / omega_d)
        assert float(result.voltage("n2").max()) == pytest.approx(
            expected_peak, rel=1e-2)


class TestACGolden:
    """Vectorized AC path vs. the per-frequency reference, every circuit."""

    FREQUENCIES = np.logspace(1, 9, 33)

    @pytest.mark.parametrize("name", available_problems())
    def test_vectorized_matches_per_frequency(self, name):
        problem = make_problem(name, "180nm")
        if not hasattr(problem, "build_circuit"):
            # Corner sweeps own no netlist of their own; their per-corner
            # children are the base circuits already covered by this sweep.
            pytest.skip(f"{name} wraps circuits covered by their base entries")
        # The bandgap AC testbench measures PSRR, so excite its supply.
        kwargs = {"supply_ac": 1.0} if name == "bandgap" else {}
        # Use the first design of a fixed-seed batch whose DC converges (not
        # every random design biases up).
        for row in problem.design_space.sample(10, rng=np.random.default_rng(11)):
            design = problem.design_space.as_dict(row)
            circuit = problem.build_circuit(design, **kwargs)
            op = dc_operating_point(circuit)
            if op.converged:
                break
        else:
            pytest.fail(f"no converged design found for {name}")
        vectorized = ac_analysis(circuit, op, self.FREQUENCIES,
                                 method="vectorized")
        reference = ac_analysis(circuit, op, self.FREQUENCIES,
                                method="per_frequency")
        for node in circuit.nodes:
            np.testing.assert_allclose(
                vectorized.response(node), reference.response(node),
                rtol=1e-8, atol=1e-15,
                err_msg=f"{name}: node {node} diverges between AC paths")


class TestDCGolden:
    """DC sweep of a diode divider vs. the Shockley equation."""

    def test_diode_divider_satisfies_shockley(self):
        saturation_current, emission = 1e-14, 1.0
        resistance = 10e3
        circuit = Circuit("diode_golden")
        source = circuit.add(VoltageSource("VIN", "in", "0", dc=0.0))
        circuit.add(Resistor("R1", "in", "d", resistance))
        circuit.add(Diode("D1", "d", "0",
                          saturation_current=saturation_current,
                          emission_coefficient=emission))

        values = np.linspace(0.3, 2.0, 18)
        _, v_diode = dc_sweep(circuit, "VIN", "dc", values, observe="d")
        # KCL at the diode node: the resistor current must equal the
        # Shockley current at the solved junction voltage.
        thermal = 1.380649e-23 * 300.15 / 1.602176634e-19
        i_resistor = (values - v_diode) / resistance
        i_shockley = saturation_current * (np.exp(v_diode / (emission * thermal)) - 1.0)
        np.testing.assert_allclose(i_resistor, i_shockley, rtol=1e-6,
                                   atol=1e-12)
        # And the junction voltage grows logarithmically: ~60 mV/decade.
        assert np.all(np.diff(v_diode) > 0)
        assert v_diode[-1] < 1.0


class TestNoiseGolden:
    """Adjoint noise analysis vs. thermodynamic closed forms."""

    K_BOLTZMANN = 1.380649e-23

    def test_resistor_divider_matches_4ktr_parallel(self):
        """Output noise of a resistive divider is 4kT(R1 || R2), flat.

        The driving voltage source is an AC short, so the two resistors
        appear in parallel from the output node -- the canonical Johnson
        noise sanity check.  Acceptance bar: <0.1% everywhere.
        """
        r1, r2 = 1e3, 3e3
        circuit = Circuit("divider_golden")
        circuit.add(VoltageSource("VIN", "in", "0", dc=0.0, ac=1.0))
        circuit.add(Resistor("R1", "in", "out", r1))
        circuit.add(Resistor("R2", "out", "0", r2))
        op = dc_operating_point(circuit)
        frequencies = np.logspace(0, 9, 46)
        result = noise_analysis(circuit, op, frequencies, output="out")
        t_kelvin = op.temperature + 273.15
        parallel = r1 * r2 / (r1 + r2)
        expected = 4.0 * self.K_BOLTZMANN * t_kelvin * parallel
        np.testing.assert_allclose(result.output_psd,
                                   np.full_like(frequencies, expected),
                                   rtol=1e-3)

    def test_rc_integrated_noise_matches_kt_over_c(self):
        """Total integrated output noise of an RC is kT/C, independent of R.

        The trapezoid rule on a dense log grid spanning far past the pole
        must recover the closed form to <0.1% -- this pins both the PSD
        shape (Lorentzian) and the integration machinery.
        """
        resistance, capacitance = 1e3, 1e-9
        circuit = Circuit("ktc_golden")
        circuit.add(VoltageSource("VIN", "in", "0", dc=0.0, ac=1.0))
        circuit.add(Resistor("R1", "in", "out", resistance))
        circuit.add(Capacitor("C1", "out", "0", capacitance))
        op = dc_operating_point(circuit)
        # Pole at 159 kHz: integrate 1 Hz .. 10 GHz, 200 points/decade.
        frequencies = np.logspace(0, 10, 2001)
        result = noise_analysis(circuit, op, frequencies, output="out")
        total = result.integrated_output_noise()
        t_kelvin = op.temperature + 273.15
        expected = np.sqrt(self.K_BOLTZMANN * t_kelvin / capacitance)
        assert total == pytest.approx(expected, rel=1e-3)

    def test_adjoint_transfers_match_direct_solves_on_opamp(self):
        """Adjoint source->output transfers vs. direct forward injections.

        On a registry op-amp bias, every noise source's transimpedance from
        the single adjoint solve must equal the brute-force answer: inject
        a unit AC current between the source's nodes and forward-solve for
        the output voltage.
        """
        from repro.spice.ac import _AC_GMIN
        from repro.spice.noise import _gather_sources

        problem = make_problem("two_stage_opamp", "180nm")
        for row in problem.design_space.sample(10, rng=np.random.default_rng(7)):
            design = problem.design_space.as_dict(row)
            circuit = problem.build_circuit(design)
            op = dc_operating_point(circuit)
            if op.converged:
                break
        else:
            pytest.fail("no converged op-amp design found")
        frequencies = np.logspace(1, 8, 15)
        result = noise_analysis(circuit, op, frequencies, output="out")
        sources = _gather_sources(circuit, op)
        assert sources, "op-amp bias exposes no noise sources"
        out_index = circuit.node_index("out")
        diagonal = np.arange(circuit.n_nodes)
        for f_index, frequency in enumerate(frequencies):
            stamper = circuit.stamp_ac(2.0 * np.pi * frequency, op)
            matrix = stamper.matrix
            matrix[diagonal, diagonal] += _AC_GMIN
            for source in sources:
                injection = np.zeros(matrix.shape[0], dtype=complex)
                if source.node_a >= 0:
                    injection[source.node_a] += 1.0
                if source.node_b >= 0:
                    injection[source.node_b] -= 1.0
                forward = np.linalg.solve(matrix, injection)
                key = f"{source.device}:{source.label}"
                adjoint_transfer = result.source_transfers[key][f_index]
                np.testing.assert_allclose(
                    adjoint_transfer, forward[out_index], rtol=1e-8,
                    err_msg=f"{key} diverges at {frequency:.3g} Hz")
