"""Golden-solution tests: every analysis checked against a closed form.

Each analysis engine is validated against an independent reference:

* transient -- RC and RL step responses against the analytic exponential,
  and series-RLC ringing against the underdamped closed form;
* AC -- the vectorized stacked-frequency path cross-checked against the
  per-frequency reference loop for every circuit in the registry;
* DC -- a swept diode divider against the Shockley equation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import available_problems, make_problem
from repro.spice import (
    Capacitor,
    Circuit,
    Diode,
    Inductor,
    Resistor,
    StepWaveform,
    VoltageSource,
    ac_analysis,
    dc_operating_point,
    dc_sweep,
    transient_analysis,
)


class TestTransientGolden:
    """Transient solver vs. analytic linear-network step responses."""

    def test_rc_step_matches_exponential(self):
        """Acceptance bar: <0.1% max error at the default tolerances."""
        tau = 1e-6
        circuit = Circuit("rc_golden")
        circuit.add(VoltageSource("VIN", "in", "0", dc=0.0,
                                  waveform=StepWaveform(0.0, 1.0)))
        circuit.add(Resistor("R1", "in", "out", 1e3))
        circuit.add(Capacitor("C1", "out", "0", 1e-9))
        result = transient_analysis(circuit, 5 * tau, observe=["out"])
        analytic = 1.0 - np.exp(-result.times / tau)
        assert np.max(np.abs(result.voltage("out") - analytic)) < 1e-3
        # The grid covers the whole window with exact endpoints.
        assert result.times[0] == 0.0
        assert result.times[-1] == pytest.approx(5 * tau, rel=1e-12)

    def test_rl_step_matches_exponential(self):
        """Series V-R-L: the midpoint node decays as exp(-t*R/L)."""
        resistance, inductance = 1e3, 1e-3
        tau = inductance / resistance
        circuit = Circuit("rl_golden")
        circuit.add(VoltageSource("VIN", "in", "0", dc=0.0,
                                  waveform=StepWaveform(0.0, 1.0)))
        circuit.add(Resistor("R1", "in", "mid", resistance))
        circuit.add(Inductor("L1", "mid", "0", inductance))
        result = transient_analysis(circuit, 5 * tau, observe=["mid"])
        # Skip t=0: the source is discontinuous there and the first sample is
        # the pre-step DC initial condition by construction.
        analytic = np.exp(-result.times[1:] / tau)
        assert np.max(np.abs(result.voltage("mid")[1:] - analytic)) < 1e-3

    def test_rlc_ringing_matches_closed_form(self):
        """Underdamped series RLC step response, five ringing periods."""
        resistance, inductance, capacitance = 100.0, 1e-3, 1e-9
        alpha = resistance / (2 * inductance)
        omega0 = 1.0 / np.sqrt(inductance * capacitance)
        omega_d = np.sqrt(omega0**2 - alpha**2)
        circuit = Circuit("rlc_golden")
        circuit.add(VoltageSource("VIN", "in", "0", dc=0.0,
                                  waveform=StepWaveform(0.0, 1.0)))
        circuit.add(Resistor("R1", "in", "n1", resistance))
        circuit.add(Inductor("L1", "n1", "n2", inductance))
        circuit.add(Capacitor("C1", "n2", "0", capacitance))
        t_stop = 5 * 2 * np.pi / omega_d
        result = transient_analysis(circuit, t_stop, observe=["n2"],
                                    reltol=1e-5)
        t = result.times
        analytic = 1.0 - np.exp(-alpha * t) * (np.cos(omega_d * t)
                                               + alpha / omega_d * np.sin(omega_d * t))
        assert np.max(np.abs(result.voltage("n2") - analytic)) < 1e-2
        # The ringing must actually be resolved, not smoothed away: the
        # first overshoot peaks at 1 + exp(-alpha*pi/omega_d).
        expected_peak = 1.0 + np.exp(-alpha * np.pi / omega_d)
        assert float(result.voltage("n2").max()) == pytest.approx(
            expected_peak, rel=1e-2)


class TestACGolden:
    """Vectorized AC path vs. the per-frequency reference, every circuit."""

    FREQUENCIES = np.logspace(1, 9, 33)

    @pytest.mark.parametrize("name", available_problems())
    def test_vectorized_matches_per_frequency(self, name):
        problem = make_problem(name, "180nm")
        if not hasattr(problem, "build_circuit"):
            # Corner sweeps own no netlist of their own; their per-corner
            # children are the base circuits already covered by this sweep.
            pytest.skip(f"{name} wraps circuits covered by their base entries")
        # The bandgap AC testbench measures PSRR, so excite its supply.
        kwargs = {"supply_ac": 1.0} if name == "bandgap" else {}
        # Use the first design of a fixed-seed batch whose DC converges (not
        # every random design biases up).
        for row in problem.design_space.sample(10, rng=np.random.default_rng(11)):
            design = problem.design_space.as_dict(row)
            circuit = problem.build_circuit(design, **kwargs)
            op = dc_operating_point(circuit)
            if op.converged:
                break
        else:
            pytest.fail(f"no converged design found for {name}")
        vectorized = ac_analysis(circuit, op, self.FREQUENCIES,
                                 method="vectorized")
        reference = ac_analysis(circuit, op, self.FREQUENCIES,
                                method="per_frequency")
        for node in circuit.nodes:
            np.testing.assert_allclose(
                vectorized.response(node), reference.response(node),
                rtol=1e-8, atol=1e-15,
                err_msg=f"{name}: node {node} diverges between AC paths")


class TestDCGolden:
    """DC sweep of a diode divider vs. the Shockley equation."""

    def test_diode_divider_satisfies_shockley(self):
        saturation_current, emission = 1e-14, 1.0
        resistance = 10e3
        circuit = Circuit("diode_golden")
        source = circuit.add(VoltageSource("VIN", "in", "0", dc=0.0))
        circuit.add(Resistor("R1", "in", "d", resistance))
        circuit.add(Diode("D1", "d", "0",
                          saturation_current=saturation_current,
                          emission_coefficient=emission))

        values = np.linspace(0.3, 2.0, 18)
        _, v_diode = dc_sweep(circuit, "VIN", "dc", values, observe="d")
        # KCL at the diode node: the resistor current must equal the
        # Shockley current at the solved junction voltage.
        thermal = 1.380649e-23 * 300.15 / 1.602176634e-19
        i_resistor = (values - v_diode) / resistance
        i_shockley = saturation_current * (np.exp(v_diode / (emission * thermal)) - 1.0)
        np.testing.assert_allclose(i_resistor, i_shockley, rtol=1e-6,
                                   atol=1e-12)
        # And the junction voltage grows logarithmically: ~60 mV/decade.
        assert np.all(np.diff(v_diode) > 0)
        assert v_diode[-1] < 1.0
