"""Tests for the batched evaluation engine (backends, cache, coordinator)."""

from __future__ import annotations

import pickle
import threading

import numpy as np
import pytest

from repro.autodiff import Tensor, no_grad
from repro.bo import RandomSearch
from repro.bo.design_space import DesignSpace, DesignVariable
from repro.bo.problem import Constraint, OptimizationProblem
from repro.circuits import TwoStageOpAmp, simulate_design
from repro.engine import (
    DesignCache,
    EvaluationEngine,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    available_backends,
    resolve_backend,
)
from repro.experiments.runner import run_repeated
from repro.spice import ac_analysis, dc_operating_point


class PicklableQuadratic(OptimizationProblem):
    """Unconstrained toy problem defined at module level so pickling by
    reference is unambiguous (the two conftest modules both claim the name
    ``conftest``, which confuses pickle in full-repo runs)."""

    def __init__(self, dim: int = 3):
        space = DesignSpace([DesignVariable(f"x{i}", 0.0, 1.0) for i in range(dim)])
        super().__init__(name="picklable_quadratic", design_space=space,
                         objective="f", minimize=False, constraints=[])

    def simulate(self, design):
        x = np.array([design[f"x{i}"] for i in range(self.design_space.dim)])
        return {"f": float(-np.sum((x - 0.6) ** 2))}


class FragileProblem(OptimizationProblem):
    """Toy constrained problem whose simulation raises for x0 > 0.5."""

    def __init__(self, dim: int = 2):
        space = DesignSpace([DesignVariable(f"x{i}", 0.0, 1.0) for i in range(dim)])
        super().__init__(name="fragile", design_space=space, objective="cost",
                         minimize=True, constraints=[Constraint("g", 0.1, "ge")])

    def simulate(self, design):
        if design["x0"] > 0.5:
            raise RuntimeError("diverged")
        return {"cost": design["x0"] + design["x1"], "g": design["x1"]}


def _quadratic_problem_factory():
    return PicklableQuadratic(dim=3)


def _random_search_factory(problem, rng):
    return RandomSearch(problem, batch_size=4, rng=rng)


# ---------------------------------------------------------------------- #
# backends                                                                #
# ---------------------------------------------------------------------- #
class TestBackends:
    def test_available(self):
        assert available_backends() == ["batched", "process", "serial", "thread"]

    def test_resolve_by_name_and_instance(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("thread"), ThreadBackend)
        assert isinstance(resolve_backend("process"), ProcessBackend)
        backend = ThreadBackend(max_workers=2)
        assert resolve_backend(backend) is backend

    def test_resolve_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu")

    def test_default_is_serial_inside_pool_workers(self, monkeypatch):
        from repro.engine import backends
        monkeypatch.setenv(backends.BACKEND_ENV_VAR, "process")
        monkeypatch.setenv(backends.WORKER_ENV_VAR, "1")
        # Inside a process-pool worker the env-var opt-in must not recurse
        # into another process pool.
        assert isinstance(backends.default_backend(), SerialBackend)
        monkeypatch.delenv(backends.WORKER_ENV_VAR)
        assert isinstance(backends.default_backend(), ProcessBackend)

    def test_nested_default_on_thread_workers_degrades_to_serial(self, monkeypatch):
        from repro.engine import backends
        monkeypatch.setenv(backends.BACKEND_ENV_VAR, "thread")
        shared = ThreadBackend(max_workers=2)
        monkeypatch.setattr(backends, "_SHARED_DEFAULTS", {"thread": shared})

        def outer(seed):
            # Simulates a fanned-out optimizer whose problem lazily resolves
            # the default backend on a worker thread; before the reentrancy
            # guard this deadlocked once outer tasks saturated the pool.
            inner = backends.default_backend()
            assert isinstance(inner, SerialBackend)
            return inner.map(lambda v: v + seed, [1, 2])

        results = shared.map(outer, list(range(8)))  # 8 outer > 2 workers
        assert results == [[1 + s, 2 + s] for s in range(8)]
        shared.shutdown()

    def test_default_pooled_backend_is_shared_singleton(self, monkeypatch):
        from repro.engine import backends
        monkeypatch.setenv(backends.BACKEND_ENV_VAR, "thread")
        monkeypatch.setattr(backends, "_SHARED_DEFAULTS", {})
        shared_a = backends.default_backend()
        shared_b = backends.default_backend()
        assert shared_a is shared_b
        # An explicit worker count asks for a specific pool: private instance.
        private = backends.default_backend(max_workers=2)
        assert private is not shared_a
        assert private.max_workers == 2

    def test_serial_map_preserves_order(self):
        assert SerialBackend().map(lambda v: v * v, [3, 1, 2]) == [9, 1, 4]

    def test_thread_map_preserves_order(self):
        with ThreadBackend(max_workers=4) as backend:
            assert backend.map(lambda v: -v, list(range(20))) == [-v for v in range(20)]

    def test_process_map_preserves_order(self):
        with ProcessBackend(max_workers=2) as backend:
            assert backend.map(abs, [-3, 2, -1]) == [3, 2, 1]

    def test_pooled_backend_is_picklable_without_executor(self):
        backend = ThreadBackend(max_workers=2)
        backend.map(str, [1, 2])  # force pool creation
        clone = pickle.loads(pickle.dumps(backend))
        assert clone.max_workers == 2
        assert clone.map(str, [3]) == ["3"]
        backend.shutdown()


# ---------------------------------------------------------------------- #
# cache                                                                   #
# ---------------------------------------------------------------------- #
class TestDesignCache:
    def test_key_is_content_based(self):
        x = np.array([1.0, 2.0, 3.0])
        assert DesignCache.key_for("p", x) == DesignCache.key_for("p", x.copy())
        assert DesignCache.key_for("p", x) != DesignCache.key_for("q", x)
        assert DesignCache.key_for("p", x) != DesignCache.key_for("p", x + 1e-12)

    def test_hit_miss_statistics(self, quadratic_problem):
        cache = DesignCache()
        key = DesignCache.key_for("p", np.ones(3))
        assert cache.get(key) is None
        cache.put(key, quadratic_problem.evaluate(np.full(3, 0.5)))
        assert cache.get(key) is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction(self, quadratic_problem):
        cache = DesignCache(maxsize=2)
        record = quadratic_problem.evaluate(np.full(3, 0.5))
        keys = [DesignCache.key_for("p", np.full(3, float(i))) for i in range(3)]
        for key in keys:
            cache.put(key, record)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.get(keys[0]) is None  # oldest entry evicted
        assert cache.get(keys[2]) is not None


# ---------------------------------------------------------------------- #
# engine                                                                  #
# ---------------------------------------------------------------------- #
class TestEvaluationEngine:
    def test_cache_hits_skip_simulation(self, quadratic_problem, rng):
        engine = EvaluationEngine(quadratic_problem)
        x = quadratic_problem.design_space.sample(5, rng=rng)
        first = engine.evaluate_batch(x)
        assert engine.n_evaluated == 5
        second = engine.evaluate_batch(x)
        assert engine.n_evaluated == 5  # all hits, no new simulations
        assert engine.cache.stats.hits == 5
        for a, b in zip(first, second):
            assert a.metrics == b.metrics
            assert a.objective == b.objective
            np.testing.assert_array_equal(a.x, b.x)

    def test_within_batch_deduplication(self, quadratic_problem):
        engine = EvaluationEngine(quadratic_problem)
        row = np.full(3, 0.25)
        results = engine.evaluate_batch(np.vstack([row, row, row]))
        assert engine.n_evaluated == 1
        assert all(r.metrics == results[0].metrics for r in results)
        # The two deduplicated rows count as saved simulations (hits).
        assert engine.cache.stats.hits == 2
        assert engine.cache.stats.misses == 1

    def test_caller_mutation_cannot_pollute_cache(self, quadratic_problem):
        engine = EvaluationEngine(quadratic_problem)
        x = np.full((1, 3), 0.4)
        first = engine.evaluate_batch(x)[0]
        first.metrics["f"] = 123.0  # caller mutates their record in place
        second = engine.evaluate_batch(x)[0]
        assert second.metrics["f"] != 123.0  # cache entry untouched

    def test_cache_disabled_counts_every_row(self, quadratic_problem, rng):
        engine = EvaluationEngine(quadratic_problem, cache=False)
        x = quadratic_problem.design_space.sample(3, rng=rng)
        engine.evaluate_batch(x)
        engine.evaluate_batch(x)
        assert engine.n_evaluated == 6
        assert "cache" not in engine.stats()

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_failure_isolation(self, backend):
        problem = FragileProblem()
        engine = EvaluationEngine(problem, backend=backend)
        x = np.array([[0.2, 0.9], [0.8, 0.1], [0.3, 0.4]])
        with pytest.warns(RuntimeWarning, match="recording pessimised"):
            results = engine.evaluate_batch(x)
        assert engine.n_failures == 1
        assert results[1].tag.startswith("error:RuntimeError")
        assert not results[1].feasible
        assert results[1].objective == problem.failed_metrics()["cost"]
        # The healthy rows are untouched by their neighbour's crash.
        assert results[0].metrics["cost"] == pytest.approx(1.1)
        assert results[2].metrics["cost"] == pytest.approx(0.7)
        engine.close()

    def test_contract_errors_are_not_isolated(self):
        class BrokenMetrics(OptimizationProblem):
            def __init__(self):
                space = DesignSpace([DesignVariable("a", 0.0, 1.0)])
                super().__init__(name="broken", design_space=space,
                                 objective="f", minimize=False, constraints=[])

            def simulate(self, design):
                return {"wrong_name": 1.0}  # objective metric missing

        engine = EvaluationEngine(BrokenMetrics())
        # A problem-implementation bug must crash loudly, not become a run
        # full of pessimised records.
        with pytest.raises(RuntimeError, match="contract error"):
            engine.evaluate_batch(np.array([[0.5]]))

    def test_cache_disabled_skips_deduplication(self, quadratic_problem):
        engine = EvaluationEngine(quadratic_problem, cache=False)
        row = np.full(3, 0.25)
        engine.evaluate_batch(np.vstack([row, row, row]))
        assert engine.n_evaluated == 3  # every row simulated independently

    def test_failures_are_not_cached(self):
        problem = FragileProblem()
        engine = EvaluationEngine(problem)
        x = np.array([[0.8, 0.1]])
        with pytest.warns(RuntimeWarning):
            engine.evaluate_batch(x)
            engine.evaluate_batch(x)
        assert engine.n_evaluated == 2  # re-evaluated, not served from cache

    def test_shared_cache_distinguishes_problem_configurations(self):
        from repro.circuits import FOMProblem
        from repro.engine import DesignCache
        cache = DesignCache()
        base = TwoStageOpAmp("180nm")
        x = base.design_space.sample(1, rng=np.random.default_rng(21))
        # Same name, different randomly-estimated normalization ranges.
        fom_a = FOMProblem(TwoStageOpAmp("180nm"), n_normalization_samples=4, rng=0)
        fom_b = FOMProblem(TwoStageOpAmp("180nm"), n_normalization_samples=4, rng=99)
        assert fom_a.name == fom_b.name
        assert fom_a.cache_token != fom_b.cache_token
        # Same class, same name, different scalar config -> distinct tokens;
        # identical config -> identical tokens (so caching still works).
        heavy_load = TwoStageOpAmp("180nm", load_capacitance=5e-12)
        assert heavy_load.cache_token != base.cache_token
        assert TwoStageOpAmp("180nm").cache_token == base.cache_token
        EvaluationEngine(fom_a, cache=cache).evaluate_batch(x)
        EvaluationEngine(fom_b, cache=cache).evaluate_batch(x)
        # B must not be served A's fom record from the shared cache: same
        # design, same name, but distinct tokens -> two independent entries.
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2
        assert len(cache) == 2

    def test_problem_default_engine_and_attach(self, quadratic_problem):
        assert quadratic_problem.engine.backend.name == "serial"
        replacement = EvaluationEngine(quadratic_problem, backend="thread")
        quadratic_problem.attach_engine(replacement)
        assert quadratic_problem.engine is replacement
        replacement.close()

    def test_problem_pickles_without_engine(self, rng):
        problem = PicklableQuadratic(dim=3)
        problem.evaluate_batch(problem.design_space.sample(2, rng=rng))
        clone = pickle.loads(pickle.dumps(problem))
        assert clone.__dict__["_engine"] is None
        assert clone.name == problem.name


# ---------------------------------------------------------------------- #
# backend equivalence on the real testbench                               #
# ---------------------------------------------------------------------- #
class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def batch(self):
        problem = TwoStageOpAmp("180nm")
        x = problem.design_space.sample(4, rng=np.random.default_rng(42))
        return problem, x

    def _metrics(self, problem, x, backend):
        fresh = TwoStageOpAmp("180nm")
        engine = EvaluationEngine(fresh, backend=backend, cache=False)
        try:
            return [e.metrics for e in engine.evaluate_batch(x)]
        finally:
            engine.close()

    def test_serial_thread_process_agree(self, batch):
        problem, x = batch
        serial = self._metrics(problem, x, "serial")
        thread = self._metrics(problem, x, "thread")
        process = self._metrics(problem, x, "process")
        for reference, candidate in ((serial, thread), (serial, process)):
            for a, b in zip(reference, candidate):
                assert a.keys() == b.keys()
                for name in a:
                    assert a[name] == pytest.approx(b[name], rel=1e-12, abs=1e-12)

    def test_simulate_design_entry_point_is_picklable(self, batch):
        problem, x = batch
        design = problem.design_space.as_dict(x[0])
        # Round-trip both the entry point and the problem through pickle the
        # way a process pool would before calling it.
        fn = pickle.loads(pickle.dumps(simulate_design))
        remote = fn(pickle.loads(pickle.dumps(problem)), design)
        assert remote == problem.simulate(design)


# ---------------------------------------------------------------------- #
# vectorized AC analysis                                                  #
# ---------------------------------------------------------------------- #
class TestVectorizedAC:
    def test_matches_per_frequency_on_two_stage_opamp(self):
        problem = TwoStageOpAmp("180nm")
        rng = np.random.default_rng(0)
        checked = 0
        for row in problem.design_space.sample(6, rng=rng):
            circuit = problem.build_circuit(problem.design_space.as_dict(row))
            op = dc_operating_point(circuit)
            if not op.converged:
                continue
            frequencies = problem.ac_frequencies
            fast = ac_analysis(circuit, op, frequencies, observe=["out"],
                               method="vectorized")
            slow = ac_analysis(circuit, op, frequencies, observe=["out"],
                               method="per_frequency")
            scale = np.max(np.abs(slow.response("out")))
            error = np.max(np.abs(fast.response("out") - slow.response("out")))
            assert error <= 1e-9 * max(scale, 1.0)
            assert fast.dc_gain_db("out") == pytest.approx(slow.dc_gain_db("out"),
                                                           abs=1e-9)
            checked += 1
        assert checked >= 3  # the sample must exercise real solves

    def test_auto_uses_vectorized_for_affine_devices(self):
        problem = TwoStageOpAmp("180nm")
        row = problem.design_space.sample(1, rng=np.random.default_rng(3))[0]
        circuit = problem.build_circuit(problem.design_space.as_dict(row))
        op = dc_operating_point(circuit)
        frequencies = problem.ac_frequencies
        auto = ac_analysis(circuit, op, frequencies, observe=["out"])
        fast = ac_analysis(circuit, op, frequencies, observe=["out"],
                           method="vectorized")
        np.testing.assert_array_equal(auto.response("out"), fast.response("out"))

    def test_forced_vectorized_rejects_non_affine_devices(self):
        problem = TwoStageOpAmp("180nm")
        row = problem.design_space.sample(1, rng=np.random.default_rng(3))[0]
        circuit = problem.build_circuit(problem.design_space.as_dict(row))
        op = dc_operating_point(circuit)
        circuit.devices[0].ac_affine = False
        with pytest.raises(ValueError, match="requires affine AC stamps"):
            ac_analysis(circuit, op, problem.ac_frequencies[:4], observe=["out"],
                        method="vectorized")

    def test_non_affine_device_forces_per_frequency(self):
        problem = TwoStageOpAmp("180nm")
        row = problem.design_space.sample(1, rng=np.random.default_rng(3))[0]
        circuit = problem.build_circuit(problem.design_space.as_dict(row))
        op = dc_operating_point(circuit)
        circuit.devices[0].ac_affine = False
        frequencies = problem.ac_frequencies[:10]
        auto = ac_analysis(circuit, op, frequencies, observe=["out"])
        slow = ac_analysis(circuit, op, frequencies, observe=["out"],
                           method="per_frequency")
        np.testing.assert_array_equal(auto.response("out"), slow.response("out"))

    def test_secretly_non_affine_stamps_are_caught_by_probe(self):
        problem = TwoStageOpAmp("180nm")
        row = problem.design_space.sample(1, rng=np.random.default_rng(3))[0]
        circuit = problem.build_circuit(problem.design_space.as_dict(row))
        op = dc_operating_point(circuit)
        frequencies = problem.ac_frequencies[:8]

        # A device whose stamps are quadratic in omega while still claiming
        # ac_affine=True (a buggy custom device).
        class QuadraticDevice:
            name = "QBAD"
            ac_affine = True
            n_branches = 0
            node_names = ("out", "0")
            is_nonlinear = False

            def bind(self, nodes, branches):
                self.node_indices, self.branch_indices = nodes, branches

            def stamp_dc(self, stamper, voltages, temperature):
                pass

            def stamp_ac(self, stamper, omega, operating_point):
                index = self.node_indices[0]
                stamper.add_entry(index, index, 1e-9 * omega ** 2)

        circuit.add(QuadraticDevice())
        reference = ac_analysis(circuit, op, frequencies, observe=["out"],
                                method="per_frequency")
        auto = ac_analysis(circuit, op, frequencies, observe=["out"])
        # The affinity probe must reject extrapolation and fall back to the
        # exact per-frequency solve.
        np.testing.assert_array_equal(auto.response("out"), reference.response("out"))
        with pytest.raises(np.linalg.LinAlgError, match="not affine"):
            ac_analysis(circuit, op, frequencies, observe=["out"],
                        method="vectorized")

    def test_unknown_method_rejected(self):
        problem = TwoStageOpAmp("180nm")
        row = problem.design_space.sample(1, rng=np.random.default_rng(3))[0]
        circuit = problem.build_circuit(problem.design_space.as_dict(row))
        op = dc_operating_point(circuit)
        with pytest.raises(ValueError, match="unknown AC method"):
            ac_analysis(circuit, op, method="magic")


# ---------------------------------------------------------------------- #
# thread-local autodiff state                                             #
# ---------------------------------------------------------------------- #
class TestThreadLocalGrad:
    def test_no_grad_does_not_leak_to_other_threads(self):
        seen: dict[str, bool] = {}

        def worker():
            seen["requires_grad"] = Tensor([1.0], requires_grad=True).requires_grad

        with no_grad():
            assert not Tensor([1.0], requires_grad=True).requires_grad
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["requires_grad"] is True

    def test_concurrent_no_grad_contexts_are_independent(self):
        ready = threading.Barrier(2)
        flags: dict[str, bool] = {}

        def with_grad():
            ready.wait()
            flags["grad"] = Tensor([1.0], requires_grad=True).requires_grad

        def without_grad():
            with no_grad():
                ready.wait()
                flags["no_grad"] = Tensor([1.0], requires_grad=True).requires_grad

        threads = [threading.Thread(target=with_grad),
                   threading.Thread(target=without_grad)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert flags == {"grad": True, "no_grad": False}


# ---------------------------------------------------------------------- #
# repeated-run fan-out                                                    #
# ---------------------------------------------------------------------- #
class TestRunRepeatedBackends:
    def test_serial_and_thread_runs_are_byte_identical(self):
        def run(backend):
            return run_repeated(_quadratic_problem_factory, _random_search_factory,
                                n_simulations=12, n_init=4, n_seeds=2, seed=9,
                                constrained=False, backend=backend)
        serial = run("serial")
        serial_again = run("serial")
        threaded = run(ThreadBackend(max_workers=2))
        np.testing.assert_array_equal(serial["curves"], serial_again["curves"])
        np.testing.assert_array_equal(serial["curves"], threaded["curves"])
        for a, b in zip(serial["histories"], threaded["histories"]):
            assert pickle.dumps(a.evaluations) == pickle.dumps(b.evaluations)
