"""Tests for the experiment harnesses (tiny budgets) and the reporting helpers."""

import numpy as np
import pytest

from repro.experiments import (
    curves_to_rows,
    format_table,
    improvement_ratio,
    make_source_model,
    run_constrained_experiment,
    run_fom_experiment,
    run_neuk_assessment,
    speedup_ratio,
)
from repro.experiments.fom_experiment import fom_summary
from repro.experiments.transfer_experiment import FIG6_PANELS


class TestReporting:
    def test_format_table_contains_rows_and_columns(self):
        text = format_table({"kato": {"i": 124.2, "gain": 61.2},
                             "mace": {"i": 127.7, "gain": 79.3}}, title="Table 1")
        assert "Table 1" in text and "kato" in text and "gain" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table({})

    def test_curves_to_rows(self):
        results = {"kato": {"summary": {"mean": np.array([1.0, 2.0, 3.0, 4.0])}}}
        rows = curves_to_rows(results, budgets=[2, 4])
        assert rows["kato"]["best@2"] == 2.0
        assert rows["kato"]["best@4"] == 4.0

    def test_improvement_ratio_directions(self):
        assert improvement_ratio(100.0, 120.0, minimize=True) == pytest.approx(1.2)
        assert improvement_ratio(1.2, 1.0, minimize=False) == pytest.approx(1.2)

    def test_speedup_ratio(self):
        reference = np.array([10.0, 8.0, 6.0, 5.0, 5.0, 5.0])
        candidate = np.array([9.0, 5.0, 4.0, 4.0, 4.0, 4.0])
        assert speedup_ratio(candidate, reference, minimize=True) == pytest.approx(3.0)

    def test_speedup_ratio_never_reached(self):
        reference = np.array([5.0, 4.0])
        candidate = np.array([10.0, 9.0])
        assert speedup_ratio(candidate, reference, minimize=True) == 0.0


class TestFig6Panels:
    def test_all_six_panels_defined(self):
        assert set(FIG6_PANELS) == {"a", "b", "c", "d", "e", "f"}

    def test_panel_a_is_node_transfer(self):
        source_circuit, source_tech, target_circuit, target_tech = FIG6_PANELS["a"]
        assert source_circuit == target_circuit
        assert source_tech != target_tech

    def test_panel_c_is_design_transfer(self):
        source_circuit, source_tech, target_circuit, target_tech = FIG6_PANELS["c"]
        assert source_circuit != target_circuit
        assert source_tech == target_tech


@pytest.mark.slow
class TestExperimentSmoke:
    """Tiny-budget smoke runs of the experiment harnesses (marked slow)."""

    def test_neuk_assessment_returns_all_kernels(self):
        results = run_neuk_assessment(n_train=20, n_test=10, train_iters=15,
                                      kernels=("rbf", "neuk"))
        assert set(results) == {"rbf", "neuk"}
        for stats in results.values():
            assert np.isfinite(stats["rmse"])

    def test_fom_experiment_smoke(self):
        results = run_fom_experiment(methods=("rs", "kato"), n_simulations=20,
                                     n_init=8, n_seeds=1,
                                     n_normalization_samples=15, quick=True)
        summary = fom_summary(results)
        assert set(summary) == {"rs", "kato"}
        assert all(np.isfinite(v) for v in summary.values())

    def test_constrained_experiment_smoke(self):
        results = run_constrained_experiment(methods=("kato",), n_simulations=26,
                                             n_init=16, n_seeds=1, quick=True)
        curve = results["kato"]["summary"]["mean"]
        assert len(curve) >= 26

    def test_make_source_model(self):
        source = make_source_model("two_stage_opamp", "180nm", n_samples=15, seed=0,
                                   train_iters=10)
        assert source.input_dim == 10
        assert source.output_dim == 4
