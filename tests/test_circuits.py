"""Tests for the circuit sizing testbenches and the FOM wrapper."""

import numpy as np
import pytest

from repro.circuits import (
    BandgapReference,
    FOMProblem,
    ThreeStageOpAmp,
    TwoStageOpAmp,
    available_problems,
    make_problem,
)

GOOD_TWO_STAGE = dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6, l_load=0.5e-6,
                      w_out=60e-6, l_out=0.3e-6, c_comp=2e-12, r_zero=2e3,
                      i_bias1=20e-6, i_bias2=100e-6)
GOOD_THREE_STAGE = dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6, l_load=0.5e-6,
                        w_mid=30e-6, l_mid=0.35e-6, w_out=80e-6, l_out=0.25e-6,
                        c_m1=2e-12, c_m2=0.5e-12, i_bias1=10e-6, i_bias23=80e-6)
GOOD_BANDGAP = dict(r_ptat=100e3, r_out=600e3, w_mirror=10e-6, l_mirror=1e-6,
                    w_amp_in=5e-6, l_amp_in=0.5e-6, i_amp=1e-6, area_ratio=8.0)


class TestRegistry:
    def test_available_problems(self):
        # The registry is open (register_problem), so other suites may add
        # entries; the paper's circuits must always be present.
        assert {"two_stage_opamp", "two_stage_opamp_settling",
                "three_stage_opamp", "bandgap"} <= set(available_problems())

    def test_make_problem(self):
        problem = make_problem("two_stage_opamp", "40nm")
        assert problem.technology.name == "40nm"
        with pytest.raises(KeyError):
            make_problem("pll")


class TestTwoStageOpAmp:
    def test_design_space_matches_paper_variables(self, two_stage_problem):
        names = two_stage_problem.design_space.names
        assert "c_comp" in names and "r_zero" in names
        assert "i_bias1" in names and "i_bias2" in names
        assert two_stage_problem.design_space.dim == 10

    def test_constraints_match_eq15(self, two_stage_problem):
        specs = {c.name: (c.threshold, c.sense) for c in two_stage_problem.constraints}
        assert specs == {"gain": (60.0, "ge"), "pm": (60.0, "ge"), "gbw": (4.0, "ge")}
        assert two_stage_problem.objective == "i_total"
        assert two_stage_problem.minimize

    def test_good_design_meets_spec(self, two_stage_problem):
        metrics = two_stage_problem.simulate(GOOD_TWO_STAGE)
        assert metrics["gain"] > 60.0
        assert metrics["pm"] > 60.0
        assert metrics["gbw"] > 4.0
        assert 10.0 < metrics["i_total"] < 1000.0

    def test_larger_compensation_cap_lowers_gbw(self, two_stage_problem):
        small_cc = dict(GOOD_TWO_STAGE, c_comp=1e-12)
        large_cc = dict(GOOD_TWO_STAGE, c_comp=8e-12)
        assert (two_stage_problem.simulate(large_cc)["gbw"]
                < two_stage_problem.simulate(small_cc)["gbw"])

    def test_40nm_variant_relaxes_gain_spec(self):
        problem = TwoStageOpAmp("40nm")
        gain_constraint = next(c for c in problem.constraints if c.name == "gain")
        assert gain_constraint.threshold == 50.0

    def test_evaluation_feasibility_flag(self, two_stage_problem):
        design = two_stage_problem.design_space.from_dict(GOOD_TWO_STAGE)
        evaluation = two_stage_problem.evaluate(design)
        assert evaluation.feasible
        assert evaluation.objective == evaluation.metrics["i_total"]

    def test_random_designs_mostly_infeasible(self, two_stage_problem, two_stage_evaluations):
        feasible = sum(e.feasible for e in two_stage_evaluations)
        assert feasible < len(two_stage_evaluations) * 0.5

    def test_failed_metrics_violate_constraints(self, two_stage_problem):
        metrics = two_stage_problem.failed_metrics()
        assert metrics["gain"] < 60.0 and metrics["i_total"] > 1e5

    def test_describe(self, two_stage_problem):
        info = two_stage_problem.describe()
        assert info["technology"] == "180nm"
        assert info["n_design_variables"] == 10


class TestThreeStageOpAmp:
    def test_dimensionality_differs_from_two_stage(self, two_stage_problem):
        problem = ThreeStageOpAmp("180nm")
        assert problem.design_space.dim == 12
        assert problem.design_space.dim != two_stage_problem.design_space.dim

    def test_constraints_match_eq16(self):
        problem = ThreeStageOpAmp("180nm")
        specs = {c.name: c.threshold for c in problem.constraints}
        assert specs == {"gain": 80.0, "pm": 60.0, "gbw": 2.0}

    def test_good_design_has_high_gain_and_positive_margin(self):
        problem = ThreeStageOpAmp("180nm")
        metrics = problem.simulate(GOOD_THREE_STAGE)
        assert metrics["gain"] > 80.0
        assert metrics["gbw"] > 2.0
        assert metrics["pm"] > 45.0

    def test_three_stage_gain_exceeds_two_stage(self, two_stage_problem):
        three = ThreeStageOpAmp("180nm").simulate(GOOD_THREE_STAGE)
        two = two_stage_problem.simulate(GOOD_TWO_STAGE)
        assert three["gain"] > two["gain"]

    def test_removing_compensation_degrades_phase_margin(self):
        problem = ThreeStageOpAmp("180nm")
        compensated = problem.simulate(GOOD_THREE_STAGE)
        uncompensated = problem.simulate(dict(GOOD_THREE_STAGE, c_m1=0.1e-12,
                                              c_m2=0.05e-12))
        assert uncompensated["pm"] < compensated["pm"]


class TestBandgap:
    def test_constraints_match_eq17(self):
        problem = BandgapReference("180nm")
        specs = {c.name: (c.threshold, c.sense) for c in problem.constraints}
        assert specs == {"i_total": (6.0, "le"), "psrr": (50.0, "ge")}
        assert problem.objective == "tc"

    def test_good_design_metrics(self):
        problem = BandgapReference("180nm")
        metrics = problem.simulate(GOOD_BANDGAP)
        assert metrics["i_total"] < 6.0
        assert metrics["psrr"] > 40.0
        assert metrics["tc"] < 1e4
        assert 0.3 < metrics["vref"] < 1.5

    def test_larger_ptat_resistor_lowers_current(self):
        problem = BandgapReference("180nm")
        small = problem.simulate(dict(GOOD_BANDGAP, r_ptat=50e3))
        large = problem.simulate(dict(GOOD_BANDGAP, r_ptat=300e3))
        assert large["i_total"] < small["i_total"]

    def test_design_space_has_eight_variables(self):
        assert BandgapReference("180nm").design_space.dim == 8


class TestFOMProblem:
    def test_fom_wrapper_metrics(self, two_stage_problem):
        fom = FOMProblem(two_stage_problem, n_normalization_samples=8, rng=0)
        metrics = fom.simulate(GOOD_TWO_STAGE)
        assert "fom" in metrics and "gain" in metrics
        assert fom.metric_names[0] == "fom"
        assert not fom.minimize and fom.constraints == []

    def test_better_design_gets_higher_fom(self, two_stage_problem):
        fom = FOMProblem(two_stage_problem, n_normalization_samples=8, rng=0)
        good = fom.fom_from_metrics({"i_total": 100.0, "gain": 70.0, "pm": 70.0, "gbw": 10.0})
        bad = fom.fom_from_metrics({"i_total": 500.0, "gain": 20.0, "pm": 10.0, "gbw": 0.5})
        assert good > bad

    def test_exceeding_spec_earns_no_extra_credit(self, two_stage_problem):
        fom = FOMProblem(two_stage_problem, n_normalization_samples=8, rng=0)
        at_spec = fom.fom_from_metrics({"i_total": 100.0, "gain": 60.0, "pm": 60.0, "gbw": 4.0})
        above_spec = fom.fom_from_metrics({"i_total": 100.0, "gain": 90.0, "pm": 80.0, "gbw": 40.0})
        assert above_spec == pytest.approx(at_spec, abs=1e-9)

    def test_explicit_normalization_skips_sampling(self, two_stage_problem):
        normalization = {name: (0.0, 1.0) for name in two_stage_problem.metric_names}
        fom = FOMProblem(two_stage_problem, normalization=normalization)
        assert fom.normalization == normalization
