"""Tests for the circuit sizing testbenches and the FOM wrapper."""

import numpy as np
import pytest

from repro.circuits import (
    BandgapReference,
    FOMProblem,
    ThreeStageOpAmp,
    TwoStageOpAmp,
    available_problems,
    make_problem,
)

GOOD_TWO_STAGE = dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6, l_load=0.5e-6,
                      w_out=60e-6, l_out=0.3e-6, c_comp=2e-12, r_zero=2e3,
                      i_bias1=20e-6, i_bias2=100e-6)
GOOD_THREE_STAGE = dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6, l_load=0.5e-6,
                        w_mid=30e-6, l_mid=0.35e-6, w_out=80e-6, l_out=0.25e-6,
                        c_m1=2e-12, c_m2=0.5e-12, i_bias1=10e-6, i_bias23=80e-6)
GOOD_BANDGAP = dict(r_ptat=100e3, r_out=600e3, w_mirror=10e-6, l_mirror=1e-6,
                    w_amp_in=5e-6, l_amp_in=0.5e-6, i_amp=1e-6, area_ratio=8.0)


class TestRegistry:
    def test_available_problems(self):
        # The registry is open (register_problem), so other suites may add
        # entries; the paper's circuits must always be present.
        assert {"two_stage_opamp", "two_stage_opamp_settling",
                "three_stage_opamp", "bandgap"} <= set(available_problems())

    def test_make_problem(self):
        problem = make_problem("two_stage_opamp", "40nm")
        assert problem.technology.name == "40nm"
        with pytest.raises(KeyError):
            make_problem("pll")


class TestTwoStageOpAmp:
    def test_design_space_matches_paper_variables(self, two_stage_problem):
        names = two_stage_problem.design_space.names
        assert "c_comp" in names and "r_zero" in names
        assert "i_bias1" in names and "i_bias2" in names
        assert two_stage_problem.design_space.dim == 10

    def test_constraints_match_eq15(self, two_stage_problem):
        specs = {c.name: (c.threshold, c.sense) for c in two_stage_problem.constraints}
        assert specs == {"gain": (60.0, "ge"), "pm": (60.0, "ge"), "gbw": (4.0, "ge")}
        assert two_stage_problem.objective == "i_total"
        assert two_stage_problem.minimize

    def test_good_design_meets_spec(self, two_stage_problem):
        metrics = two_stage_problem.simulate(GOOD_TWO_STAGE)
        assert metrics["gain"] > 60.0
        assert metrics["pm"] > 60.0
        assert metrics["gbw"] > 4.0
        assert 10.0 < metrics["i_total"] < 1000.0

    def test_larger_compensation_cap_lowers_gbw(self, two_stage_problem):
        small_cc = dict(GOOD_TWO_STAGE, c_comp=1e-12)
        large_cc = dict(GOOD_TWO_STAGE, c_comp=8e-12)
        assert (two_stage_problem.simulate(large_cc)["gbw"]
                < two_stage_problem.simulate(small_cc)["gbw"])

    def test_40nm_variant_relaxes_gain_spec(self):
        problem = TwoStageOpAmp("40nm")
        gain_constraint = next(c for c in problem.constraints if c.name == "gain")
        assert gain_constraint.threshold == 50.0

    def test_evaluation_feasibility_flag(self, two_stage_problem):
        design = two_stage_problem.design_space.from_dict(GOOD_TWO_STAGE)
        evaluation = two_stage_problem.evaluate(design)
        assert evaluation.feasible
        assert evaluation.objective == evaluation.metrics["i_total"]

    def test_random_designs_mostly_infeasible(self, two_stage_problem, two_stage_evaluations):
        feasible = sum(e.feasible for e in two_stage_evaluations)
        assert feasible < len(two_stage_evaluations) * 0.5

    def test_failed_metrics_violate_constraints(self, two_stage_problem):
        metrics = two_stage_problem.failed_metrics()
        assert metrics["gain"] < 60.0 and metrics["i_total"] > 1e5

    def test_describe(self, two_stage_problem):
        info = two_stage_problem.describe()
        assert info["technology"] == "180nm"
        assert info["n_design_variables"] == 10


class TestThreeStageOpAmp:
    def test_dimensionality_differs_from_two_stage(self, two_stage_problem):
        problem = ThreeStageOpAmp("180nm")
        assert problem.design_space.dim == 12
        assert problem.design_space.dim != two_stage_problem.design_space.dim

    def test_constraints_match_eq16(self):
        problem = ThreeStageOpAmp("180nm")
        specs = {c.name: c.threshold for c in problem.constraints}
        assert specs == {"gain": 80.0, "pm": 60.0, "gbw": 2.0}

    def test_good_design_has_high_gain_and_positive_margin(self):
        problem = ThreeStageOpAmp("180nm")
        metrics = problem.simulate(GOOD_THREE_STAGE)
        assert metrics["gain"] > 80.0
        assert metrics["gbw"] > 2.0
        assert metrics["pm"] > 45.0

    def test_three_stage_gain_exceeds_two_stage(self, two_stage_problem):
        three = ThreeStageOpAmp("180nm").simulate(GOOD_THREE_STAGE)
        two = two_stage_problem.simulate(GOOD_TWO_STAGE)
        assert three["gain"] > two["gain"]

    def test_removing_compensation_degrades_phase_margin(self):
        problem = ThreeStageOpAmp("180nm")
        compensated = problem.simulate(GOOD_THREE_STAGE)
        uncompensated = problem.simulate(dict(GOOD_THREE_STAGE, c_m1=0.1e-12,
                                              c_m2=0.05e-12))
        assert uncompensated["pm"] < compensated["pm"]


class TestBandgap:
    def test_constraints_match_eq17(self):
        problem = BandgapReference("180nm")
        specs = {c.name: (c.threshold, c.sense) for c in problem.constraints}
        assert specs == {"i_total": (6.0, "le"), "psrr": (50.0, "ge")}
        assert problem.objective == "tc"

    def test_good_design_metrics(self):
        problem = BandgapReference("180nm")
        metrics = problem.simulate(GOOD_BANDGAP)
        assert metrics["i_total"] < 6.0
        assert metrics["psrr"] > 40.0
        assert metrics["tc"] < 1e4
        assert 0.3 < metrics["vref"] < 1.5

    def test_larger_ptat_resistor_lowers_current(self):
        problem = BandgapReference("180nm")
        small = problem.simulate(dict(GOOD_BANDGAP, r_ptat=50e3))
        large = problem.simulate(dict(GOOD_BANDGAP, r_ptat=300e3))
        assert large["i_total"] < small["i_total"]

    def test_design_space_has_eight_variables(self):
        assert BandgapReference("180nm").design_space.dim == 8


class TestFOMProblem:
    def test_fom_wrapper_metrics(self, two_stage_problem):
        fom = FOMProblem(two_stage_problem, n_normalization_samples=8, rng=0)
        metrics = fom.simulate(GOOD_TWO_STAGE)
        assert "fom" in metrics and "gain" in metrics
        assert fom.metric_names[0] == "fom"
        assert not fom.minimize and fom.constraints == []

    def test_better_design_gets_higher_fom(self, two_stage_problem):
        fom = FOMProblem(two_stage_problem, n_normalization_samples=8, rng=0)
        good = fom.fom_from_metrics({"i_total": 100.0, "gain": 70.0, "pm": 70.0, "gbw": 10.0})
        bad = fom.fom_from_metrics({"i_total": 500.0, "gain": 20.0, "pm": 10.0, "gbw": 0.5})
        assert good > bad

    def test_exceeding_spec_earns_no_extra_credit(self, two_stage_problem):
        fom = FOMProblem(two_stage_problem, n_normalization_samples=8, rng=0)
        at_spec = fom.fom_from_metrics({"i_total": 100.0, "gain": 60.0, "pm": 60.0, "gbw": 4.0})
        above_spec = fom.fom_from_metrics({"i_total": 100.0, "gain": 90.0, "pm": 80.0, "gbw": 40.0})
        assert above_spec == pytest.approx(at_spec, abs=1e-9)

    def test_explicit_normalization_skips_sampling(self, two_stage_problem):
        normalization = {name: (0.0, 1.0) for name in two_stage_problem.metric_names}
        fom = FOMProblem(two_stage_problem, normalization=normalization)
        assert fom.normalization == normalization


GOOD_LDO = dict(w_pass=100e-6, l_pass=0.5e-6, gm_ea=3e-3, r_ea=3e5,
                c_ea=5e-12, r_fb=2e4)
GOOD_COMPARATOR = dict(w_in=10e-6, l_in=0.18e-6, w_latch_n=4e-6,
                       w_latch_p=8e-6, w_tail=10e-6)
GOOD_RING = dict(w_n=5e-6, w_p=10e-6, l_gate=0.18e-6, c_stage=1e-12)


class TestLowDropoutRegulator:
    def test_good_design_regulates_and_rejects_supply(self):
        problem = make_problem("ldo")
        metrics, ok = problem.simulate_checked(GOOD_LDO)
        assert ok
        # Regulation to 0.8 * VDD within the spec band, real PSRR and a
        # physical (finite, positive) noise and droop readout.
        assert metrics["v_err"] < 50.0
        assert metrics["psrr"] > 30.0
        assert 0.0 < metrics["vnoise"] < 1e4
        assert 0.0 <= metrics["droop"] < 1e3
        assert metrics["i_q"] > 0.0

    def test_more_loop_gain_improves_psrr(self):
        problem = make_problem("ldo")
        weak = dict(GOOD_LDO, gm_ea=1e-4)
        strong = dict(GOOD_LDO, gm_ea=3e-3)
        psrr_weak = problem.simulate(weak)["psrr"]
        psrr_strong = problem.simulate(strong)["psrr"]
        assert psrr_strong > psrr_weak

    def test_noise_counts_every_device_class(self):
        from repro.bench import Simulator
        problem = make_problem("ldo")
        result = Simulator().run(problem.bench, GOOD_LDO)
        contributions = result["noise"].contribution_fractions()
        # Pass device and both divider resistors all contribute.
        assert {"MPASS", "RFB1", "RFB2"} <= set(contributions)


class TestDynamicComparator:
    def test_decides_correctly_and_fast(self):
        problem = make_problem("comparator")
        metrics, ok = problem.simulate_checked(GOOD_COMPARATOR)
        assert ok
        assert metrics["decision"] == 1.0
        assert 0.0 < metrics["t_decide"] < 5.0
        assert metrics["v_diff"] > 0.5 * problem.technology.vdd

    def test_flipped_input_flips_decision(self):
        problem = make_problem("comparator", input_overdrive=-5e-3)
        metrics = problem.simulate(GOOD_COMPARATOR)
        assert metrics["decision"] == 0.0
        assert metrics["v_diff"] < 0.0

    def test_heavier_load_slows_decision(self):
        fast = make_problem("comparator").simulate(GOOD_COMPARATOR)
        slow = make_problem("comparator",
                            load_capacitance=500e-15).simulate(GOOD_COMPARATOR)
        assert slow["t_decide"] > fast["t_decide"]


class TestRingOscillatorVCO:
    def test_oscillates_with_physical_metrics(self):
        problem = make_problem("ring_vco", t_stop=100e-9)
        metrics, ok = problem.simulate_checked(GOOD_RING)
        assert ok
        assert metrics["freq"] > 50.0
        assert metrics["power"] > 0.0
        assert metrics["pn_proxy"] > 0.0
        # Metastable bias sits between the rails.
        vdd = problem.technology.vdd
        assert 0.2 * vdd < metrics["v_mid"] < 0.8 * vdd

    def test_larger_stage_cap_lowers_frequency(self):
        problem = make_problem("ring_vco", t_stop=100e-9)
        fast = problem.simulate(GOOD_RING)
        slow = problem.simulate(dict(GOOD_RING, c_stage=3e-12))
        assert 0.0 < slow["freq"] < fast["freq"]


class TestRobustProblems:
    def test_registry_carries_robust_variants(self):
        assert {"two_stage_opamp_robust", "bandgap_robust",
                "ldo_robust"} <= set(available_problems())

    def test_structure_composes_corners_and_yield(self):
        problem = make_problem("ldo_robust", mc={"n_min": 4, "n_max": 4})
        try:
            assert problem.name == "ldo_robust_180nm"
            # Yield constraint on top of the base specs, one yield child per
            # corner, nominal corner first.
            assert [c.name for c in problem.constraints][-1] == "yield"
            assert len(problem.children) == 3
            assert problem.children[0].sim_temperature == pytest.approx(27.0)
            info = problem.describe()
            assert len(info["corners"]) == 3
            assert info["yield_target"] == pytest.approx(0.9)
            with pytest.raises(NotImplementedError):
                problem.testbench()
        finally:
            problem.close()

    def test_cache_tokens_distinguish_corner_sets(self):
        from repro.bench import standard_corners
        default = make_problem("ldo_robust")
        full = make_problem("ldo_robust", corners=standard_corners())
        try:
            assert default.cache_token != full.cache_token
        finally:
            default.close()
            full.close()
