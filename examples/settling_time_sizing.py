"""Time-domain sizing example: minimise settling time under a slew constraint.

Run with::

    python examples/settling_time_sizing.py

Sizes the two-stage op-amp in a unity-gain follower testbench for the
fastest 1% settling of a 200 mV step, subject to slew-rate and overshoot
constraints, using constrained MACE -- expressed through the Study API:

* the run is a declarative :class:`repro.study.StudySpec` (the same dict
  saved as JSON works with ``python -m repro run``);
* a :class:`LoggingCallback` streams per-batch progress and an
  :class:`EarlyStopping` callback ends the run once the settling time
  stalls, so no budget is wasted after convergence;
* a checkpoint file makes the run resumable: kill the script and re-run
  ``python -m repro resume settling_study.ckpt.jsonl`` to continue it.

Every evaluation is a full transient simulation (adaptive-timestep
trapezoidal integration) routed through the batched evaluation engine, so
repeated designs are served from the design cache instead of being
re-integrated.
"""

from __future__ import annotations

from repro.study import EarlyStopping, LoggingCallback, Study, StudySpec

CHECKPOINT = "settling_study.ckpt.jsonl"

SPEC = {
    "optimizer": "mace",          # constrained problem -> six-objective MACE
    "circuit": "two_stage_opamp_settling",
    "technology": "180nm",
    "n_simulations": 40,
    "n_init": 20,
    "batch_size": 4,
    "seed": 0,
    "optimizer_options": {"surrogate_train_iters": 25,
                          "pop_size": 40, "n_generations": 12},
}


def main() -> None:
    spec = StudySpec.from_dict(SPEC)
    study = Study(spec,
                  callbacks=(LoggingCallback(),
                             EarlyStopping(patience=4, min_delta=1e-3)),
                  checkpoint_path=CHECKPOINT)
    problem = spec.build_problem()
    print(f"Problem: {problem.name}")
    print(f"  objective : minimise {problem.objective} (us)")
    for constraint in problem.constraints:
        sense = ">=" if constraint.sense == "ge" else "<="
        print(f"  constraint: {constraint.name} {sense} {constraint.threshold}")

    result = study.run()
    best = result.history.best(constrained=True)
    if best is None:
        print("no feasible design found at this budget")
        return
    print()
    print("Best feasible design:")
    for name, value in best.metrics.items():
        print(f"  {name:<10} {value:10.4f}")
    print()
    print("Engine statistics (cache serves repeated designs):")
    print(f"  {result.engine_stats}")
    print(f"\nCheckpoint written to {CHECKPOINT} "
          f"(resume with: python -m repro resume {CHECKPOINT})")


if __name__ == "__main__":
    main()
