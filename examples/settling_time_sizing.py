"""Time-domain sizing example: minimise settling time under a slew constraint.

Run with::

    python examples/settling_time_sizing.py

Sizes the two-stage op-amp in a unity-gain follower testbench for the
fastest 1% settling of a 200 mV step, subject to slew-rate and overshoot
constraints, using constrained MACE.  Every evaluation is a full transient
simulation (adaptive-timestep trapezoidal integration) routed through the
batched evaluation engine, so repeated designs are served from the design
cache instead of being re-integrated.
"""

from __future__ import annotations

from repro.bo import ConstrainedMACE
from repro.circuits import TwoStageOpAmpSettling


def main() -> None:
    problem = TwoStageOpAmpSettling("180nm")
    print(f"Problem: {problem.name}")
    print(f"  objective : minimise {problem.objective} (us)")
    for constraint in problem.constraints:
        sense = ">=" if constraint.sense == "ge" else "<="
        print(f"  constraint: {constraint.name} {sense} {constraint.threshold}")

    optimizer = ConstrainedMACE(problem, batch_size=4, rng=0,
                                surrogate_train_iters=25,
                                pop_size=40, n_generations=12)
    history = optimizer.optimize(n_simulations=40, n_init=20)

    best = history.best(constrained=True)
    if best is None:
        print("no feasible design found at this budget")
        return
    print()
    print("Best feasible design:")
    for name, value in best.metrics.items():
        print(f"  {name:<10} {value:10.4f}")
    print()
    print("Engine statistics (cache serves repeated designs):")
    print(f"  {problem.engine.stats()}")


if __name__ == "__main__":
    main()
