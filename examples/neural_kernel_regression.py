"""Neural Kernel example: compare GP kernels on a circuit regression task.

Run with::

    python examples/neural_kernel_regression.py

Reproduces the shape of paper Fig. 1(b): GPs with RBF, Rational Quadratic,
Matern-5/2, a deep kernel (DKL) and the Neural Kernel (Neuk) are fitted to
two-stage OpAmp gain data and compared on held-out test RMSE.
"""

from __future__ import annotations

from repro.experiments import format_table, run_neuk_assessment


def main() -> None:
    print("Simulating training/test designs and fitting one GP per kernel ...")
    results = run_neuk_assessment(
        circuit="two_stage_opamp",
        technology="180nm",
        target_metric="gain",
        n_train=80,
        n_test=40,
        train_iters=120,
        seed=0,
    )
    print()
    print(format_table(results,
                       title="Kernel assessment (test RMSE / MAE on gain, dB)",
                       float_format="{:.3f}"))
    best = min(results, key=lambda name: results[name]["rmse"])
    print(f"\nBest kernel on this task: {best}")


if __name__ == "__main__":
    main()
