"""Transfer learning example: reuse 180 nm knowledge when sizing at 40 nm.

Run with::

    python examples/transfer_180nm_to_40nm.py

This reproduces the shape of paper Fig. 6(a) at a small budget: a source
model is built from random simulations of the 180 nm two-stage OpAmp, then
KATO is run on the 40 nm version of the same amplifier twice -- once without
transfer and once with the KAT-GP + selective-transfer pipeline -- and the
best-so-far curves are printed side by side.

Both arms are declarative studies; the transfer source is part of the
``kato_tl`` spec (a :class:`repro.study.TransferSpec`), so the whole
comparison could equally be driven from two JSON files and
``python -m repro run``.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import speedup_ratio
from repro.study import Study, StudySpec

COMMON = {
    "circuit": "two_stage_opamp",
    "technology": "40nm",
    "n_simulations": 60,
    "n_init": 30,
    "seed": 1,
    "optimizer_options": {"surrogate_train_iters": 25, "kat_train_iters": 80,
                          "pop_size": 40, "n_generations": 12},
}


def main() -> None:
    plain_spec = StudySpec.from_dict({**COMMON, "optimizer": "kato"})
    tl_spec = StudySpec.from_dict({
        **COMMON,
        "optimizer": "kato_tl",
        "transfer": {"circuit": "two_stage_opamp", "technology": "180nm",
                     "n_samples": 80, "seed": 0},
    })

    print("Optimising the 40 nm two-stage OpAmp without transfer ...")
    plain_history = Study(plain_spec).run().history
    print("Optimising the 40 nm two-stage OpAmp with KAT-GP transfer "
          "(source: 80 random 180 nm simulations) ...")
    tl_study = Study(tl_spec)
    tl_history = tl_study.run().history

    plain_curve = plain_history.best_curve(constrained=True)
    tl_curve = tl_history.best_curve(constrained=True)
    print("\nbudget   KATO (uA)   KATO+TL (uA)")
    for index in range(29, len(plain_curve), 10):
        plain = plain_curve[index] if np.isfinite(plain_curve[index]) else float("nan")
        transferred = tl_curve[index] if np.isfinite(tl_curve[index]) else float("nan")
        print(f"{index + 1:6d}   {plain:9.2f}   {transferred:11.2f}")

    finite = np.isfinite(plain_curve) & np.isfinite(tl_curve)
    if finite.any():
        speedup = speedup_ratio(tl_curve, plain_curve, minimize=True)
        print(f"\nSpeedup of transfer over no-transfer: {speedup:.2f}x")
    print("Selective-transfer weights:",
          tl_study.optimizer.transfer_report()["weights"])


if __name__ == "__main__":
    main()
