"""Transfer learning example: reuse 180 nm knowledge when sizing at 40 nm.

Run with::

    python examples/transfer_180nm_to_40nm.py

This reproduces the shape of paper Fig. 6(a) at a small budget: a source
model is built from random simulations of the 180 nm two-stage OpAmp, then
KATO is run on the 40 nm version of the same amplifier twice -- once without
transfer and once with the KAT-GP + selective-transfer pipeline -- and the
best-so-far curves are printed side by side.
"""

from __future__ import annotations

import numpy as np

from repro.circuits import TwoStageOpAmp
from repro.core import KATO, KATOConfig
from repro.experiments import make_source_model, speedup_ratio


def run_kato(problem, source, seed):
    config = KATOConfig(batch_size=4, surrogate_train_iters=25,
                        kat_train_iters=80, pop_size=40, n_generations=12)
    optimizer = KATO(problem, source=source, config=config, rng=seed)
    history = optimizer.optimize(n_simulations=60, n_init=30)
    return optimizer, history


def main() -> None:
    print("Building source model from 80 random 180 nm simulations ...")
    source = make_source_model("two_stage_opamp", "180nm", n_samples=80, seed=0)

    print("Optimising the 40 nm two-stage OpAmp without transfer ...")
    _, plain_history = run_kato(TwoStageOpAmp("40nm"), source=None, seed=1)
    print("Optimising the 40 nm two-stage OpAmp with KAT-GP transfer ...")
    kato_tl, tl_history = run_kato(TwoStageOpAmp("40nm"), source=source, seed=1)

    plain_curve = plain_history.best_curve(constrained=True)
    tl_curve = tl_history.best_curve(constrained=True)
    print("\nbudget   KATO (uA)   KATO+TL (uA)")
    for index in range(29, len(plain_curve), 10):
        plain = plain_curve[index] if np.isfinite(plain_curve[index]) else float("nan")
        transferred = tl_curve[index] if np.isfinite(tl_curve[index]) else float("nan")
        print(f"{index + 1:6d}   {plain:9.2f}   {transferred:11.2f}")

    finite = np.isfinite(plain_curve) & np.isfinite(tl_curve)
    if finite.any():
        speedup = speedup_ratio(tl_curve, plain_curve, minimize=True)
        print(f"\nSpeedup of transfer over no-transfer: {speedup:.2f}x")
    print("Selective-transfer weights:", kato_tl.transfer_report()["weights"])


if __name__ == "__main__":
    main()
