"""Bandgap sizing example: minimise temperature drift under current/PSRR limits.

Run with::

    python examples/bandgap_constrained_sizing.py

Sizes the bandgap voltage reference (paper Eq. 17: minimise the temperature
coefficient subject to I_total < 6 uA and PSRR > 50 dB) with KATO and with
the constrained-MACE baseline, then prints both results next to the
human-expert reference -- a miniature version of the bandgap column of the
paper's Table 1.
"""

from __future__ import annotations

from repro.baselines import evaluate_expert
from repro.circuits import BandgapReference
from repro.experiments import format_table
from repro.study import Study, StudySpec


def main() -> None:
    rows = {}
    expert = evaluate_expert(BandgapReference("180nm"))
    rows["human_expert"] = dict(expert.metrics)

    options = {"surrogate_train_iters": 25, "pop_size": 40, "n_generations": 12}
    for method in ("mace", "kato"):
        print(f"Running {method} ...")
        spec = StudySpec(optimizer=method, circuit="bandgap",
                         technology="180nm", n_simulations=60, n_init=30,
                         batch_size=4, seed=0, optimizer_options=options)
        history = Study(spec).run().history
        best = history.best(constrained=True)
        if best is not None:
            rows[method] = dict(best.metrics)

    print()
    print(format_table(rows, title="Bandgap (180nm): best designs "
                                   "(tc in ppm/degC, i_total in uA, psrr in dB)"))


if __name__ == "__main__":
    main()
