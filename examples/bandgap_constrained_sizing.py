"""Bandgap sizing example: minimise temperature drift under current/PSRR limits.

Run with::

    python examples/bandgap_constrained_sizing.py

Sizes the bandgap voltage reference (paper Eq. 17: minimise the temperature
coefficient subject to I_total < 6 uA and PSRR > 50 dB) with KATO and with
the constrained-MACE baseline, then prints both results next to the
human-expert reference -- a miniature version of the bandgap column of the
paper's Table 1.

The second half re-runs KATO on the *corner-robust* variant of the problem
(``bandgap_corners``): every design is simulated at nominal plus worst-case
PVT conditions -- slow/fast silicon, -40/125 C, a +-10% supply -- through
the declarative testbench layer, and judged by its worst corner.  The spec
shows how ``problem_options`` selects the corner set; the nominal column of
the robust run is directly comparable to the nominal-only runs above.

The final run targets the statistical half of robustness: ``bandgap_yield``
draws seeded Pelgrom mismatch samples for the mirror devices and constrains
the *yield* -- the probability that the sized reference still meets its
current and PSRR specs on real, imperfectly matched silicon -- alongside
the nominal constraints.  Adaptive stopping keeps the per-design cost low:
clearly-good and clearly-bad designs settle their Wilson confidence
interval after a couple of dozen samples.
"""

from __future__ import annotations

from repro.baselines import evaluate_expert
from repro.circuits import BandgapReference
from repro.experiments import format_table
from repro.study import Study, StudySpec

OPTIONS = {"surrogate_train_iters": 25, "pop_size": 40, "n_generations": 12}

#: Reduced three-corner set so the example stays minutes, not hours; drop
#: the ``corners`` entry entirely to get the full five-corner standard set.
CORNERS = [
    {"name": "nominal"},
    {"name": "ss_hot_low", "process": "ss", "temperature": 125.0,
     "vdd_scale": 0.9},
    {"name": "ff_cold_high", "process": "ff", "temperature": -40.0,
     "vdd_scale": 1.1},
]


def main() -> None:
    rows = {}
    expert = evaluate_expert(BandgapReference("180nm"))
    rows["human_expert"] = dict(expert.metrics)

    for method in ("mace", "kato"):
        print(f"Running {method} (nominal corner) ...")
        spec = StudySpec(optimizer=method, circuit="bandgap",
                         technology="180nm", n_simulations=60, n_init=30,
                         batch_size=4, seed=0, optimizer_options=OPTIONS)
        history = Study(spec).run().history
        best = history.best(constrained=True)
        if best is not None:
            rows[method] = dict(best.metrics)

    # Corner-robust run: same optimizer, same budget, but each simulation
    # fans across the PVT corners and the constraints apply to the worst one.
    print("Running kato (corner-robust) ...")
    robust_spec = StudySpec(optimizer="kato", circuit="bandgap_corners",
                            technology="180nm", n_simulations=60, n_init=30,
                            batch_size=4, seed=0, optimizer_options=OPTIONS,
                            problem_options={"corners": CORNERS})
    robust_best = Study(robust_spec).run().history.best(constrained=True)
    if robust_best is not None:
        rows["kato_corners(worst)"] = {
            key: value for key, value in robust_best.metrics.items()
            if key != "tc_nominal"}
        rows["kato_corners(nominal tc)"] = {
            "tc": robust_best.metrics["tc_nominal"]}

    # Yield-constrained run: every design is additionally judged by the
    # fraction of seeded mismatch samples that still meet the specs.
    print("Running kato (mismatch-yield-constrained) ...")
    yield_spec = StudySpec(optimizer="kato", circuit="bandgap_yield",
                           technology="180nm", n_simulations=60, n_init=30,
                           batch_size=4, seed=0, optimizer_options=OPTIONS,
                           problem_options={"yield_target": 0.8,
                                            "mc": {"n_max": 32, "n_min": 12,
                                                   "batch_size": 8, "seed": 0,
                                                   "ci_half_width": 0.08}})
    yield_best = Study(yield_spec).run().history.best(constrained=True)
    if yield_best is not None:
        keep = ("tc", "i_total", "psrr", "yield")
        rows["kato_yield"] = {key: yield_best.metrics[key] for key in keep}
        print(f"  best design: yield {yield_best.metrics['yield']:.2f} "
              f"[{yield_best.metrics['yield_ci_low']:.2f}, "
              f"{yield_best.metrics['yield_ci_high']:.2f}] from "
              f"{yield_best.metrics['mc_samples']:.0f} mismatch samples; "
              f"tc p99 {yield_best.metrics['tc_p99']:.0f} ppm/degC")

    print()
    print(format_table(rows, title="Bandgap (180nm): best designs "
                                   "(tc in ppm/degC, i_total in uA, psrr in dB); "
                                   "kato_corners rows are worst-case across PVT"))


if __name__ == "__main__":
    main()
