"""Bandgap sizing example: minimise temperature drift under current/PSRR limits.

Run with::

    python examples/bandgap_constrained_sizing.py

Sizes the bandgap voltage reference (paper Eq. 17: minimise the temperature
coefficient subject to I_total < 6 uA and PSRR > 50 dB) with KATO and with
the constrained-MACE baseline, then prints both results next to the
human-expert reference -- a miniature version of the bandgap column of the
paper's Table 1.
"""

from __future__ import annotations

from repro.baselines import evaluate_expert
from repro.bo import ConstrainedMACE
from repro.circuits import BandgapReference
from repro.core import KATO, KATOConfig
from repro.experiments import format_table


def main() -> None:
    rows = {}
    expert = evaluate_expert(BandgapReference("180nm"))
    rows["human_expert"] = dict(expert.metrics)

    print("Running constrained MACE ...")
    mace_problem = BandgapReference("180nm")
    mace = ConstrainedMACE(mace_problem, batch_size=4, rng=0, variant="full",
                           surrogate_train_iters=25, pop_size=40, n_generations=12)
    mace_history = mace.optimize(n_simulations=60, n_init=30)
    best_mace = mace_history.best(constrained=True)
    if best_mace is not None:
        rows["mace"] = dict(best_mace.metrics)

    print("Running KATO ...")
    kato_problem = BandgapReference("180nm")
    config = KATOConfig(batch_size=4, surrogate_train_iters=25,
                        pop_size=40, n_generations=12)
    kato = KATO(kato_problem, config=config, rng=0)
    kato_history = kato.optimize(n_simulations=60, n_init=30)
    best_kato = kato_history.best(constrained=True)
    if best_kato is not None:
        rows["kato"] = dict(best_kato.metrics)

    print()
    print(format_table(rows, title="Bandgap (180nm): best designs "
                                   "(tc in ppm/degC, i_total in uA, psrr in dB)"))


if __name__ == "__main__":
    main()
