"""Quickstart: size a two-stage op-amp with KATO in a few dozen simulations.

Run with::

    python examples/quickstart.py

The script builds the 180 nm two-stage OpAmp testbench (minimise supply
current subject to gain / phase-margin / bandwidth specs, paper Eq. 15), runs
KATO without transfer for a small simulation budget and prints the best
design it finds along with the human-expert reference.
"""

from __future__ import annotations

from repro.baselines import evaluate_expert
from repro.study import Study, StudySpec


def main() -> None:
    spec = StudySpec(optimizer="kato", circuit="two_stage_opamp",
                     technology="180nm", n_simulations=80, n_init=40,
                     batch_size=4, seed=0,
                     optimizer_options={"surrogate_train_iters": 30,
                                        "pop_size": 48, "n_generations": 15})
    problem = spec.build_problem()
    print("Problem:", problem.name)
    print("  design variables:", ", ".join(problem.design_space.names))
    print("  objective: minimise", problem.objective)
    for constraint in problem.constraints:
        symbol = ">=" if constraint.sense == "ge" else "<="
        print(f"  constraint: {constraint.name} {symbol} {constraint.threshold}")

    history = Study(spec).run().history

    best = history.best(constrained=True)
    expert = evaluate_expert(problem)
    print(f"\nSimulations used: {history.n_simulations}")
    print(f"Feasible designs found: {int(history.feasible.sum())}")
    print("\nBest KATO design:")
    for name, value in best.metrics.items():
        print(f"  {name:8s} = {value:10.3f}")
    print("\nHuman-expert reference:")
    for name, value in expert.metrics.items():
        print(f"  {name:8s} = {value:10.3f}")
    if best.feasible and best.metrics["i_total"] < expert.metrics["i_total"]:
        ratio = expert.metrics["i_total"] / best.metrics["i_total"]
        print(f"\nKATO beats the expert on supply current by {ratio:.2f}x")


if __name__ == "__main__":
    main()
