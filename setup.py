"""Package metadata and dependencies -- the single source both for
``pip install`` and for CI.

CI installs with ``pip install -e .[test]`` so the dependency list cannot
drift from a hand-maintained line in the workflow file (that drift is
exactly how ``scipy`` once went missing from CI while ``repro.gp.gpr``
imported it).

The execution environment used for offline development has no ``wheel``
package, so PEP 517 editable installs fail at ``bdist_wheel`` there; use
``pip install -e . --no-use-pep517 --no-build-isolation`` (or just export
``PYTHONPATH=src``) in that situation.
"""

import os

from setuptools import find_packages, setup

_VERSION: dict[str, str] = {}
with open(os.path.join(os.path.dirname(__file__), "src", "repro", "version.py"),
          encoding="utf-8") as handle:
    exec(handle.read(), _VERSION)

setup(
    name="kato-repro",
    version=_VERSION["__version__"],
    description=("Reproduction of KATO (DAC 2024): knowledge-transfer Bayesian "
                 "optimization for transistor sizing on an in-repo MNA SPICE "
                 "simulator"),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.24",
        "scipy>=1.10",
    ],
    entry_points={
        # Same CLI as `python -m repro` (run/resume/list-* study commands).
        "console_scripts": ["kato-repro = repro.study.cli:main"],
    },
    extras_require={
        "test": [
            "pytest>=7",
            "pytest-benchmark",
        ],
    },
)
