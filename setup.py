"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 517 editable
installs fail at ``bdist_wheel``.  Keeping this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work offline; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
