"""Benchmark B-CORNERS -- testbench OP reuse and PVT corner fan-out.

Not a paper figure: this benchmark guards the declarative testbench layer.
It measures

* the operating-point-reuse speedup of the bench simulator (shared bias vs
  the naive one-solve-per-analysis mode) on a multi-analysis bench,
* nominal-vs-five-corner wall time for the ``two_stage_opamp_corners``
  robust-sizing problem (serial and thread fan-out), and

emits one machine-readable ``BENCH_CORNERS {json}`` line so CI can track
regressions, next to the usual human-readable table.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import ACSpec, OPSpec, Simulator, Testbench, gain_db
from repro.circuits import make_problem

from conftest import budget, record_bench, record_report

GOOD_TWO_STAGE = dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6, l_load=0.5e-6,
                      w_out=60e-6, l_out=0.3e-6, c_comp=2e-12, r_zero=2e3,
                      i_bias1=20e-6, i_bias2=100e-6)


def _multi_analysis_bench(problem) -> Testbench:
    """Three AC sweeps around one bias: the OP-reuse showcase."""
    frequencies = problem.ac_frequencies
    return Testbench(
        name="reuse_bench",
        builders={"main": problem.build_circuit},
        analyses=[
            OPSpec("op"),
            ACSpec("ac1", frequencies=frequencies, observe=("out",), op="op"),
            ACSpec("ac2", frequencies=frequencies, observe=("out",), op="op"),
            ACSpec("ac3", frequencies=frequencies, observe=("out",), op="op"),
        ],
        measures=[gain_db("ac1", "out", name="gain")])


def _time_simulations(fn, designs) -> float:
    start = time.perf_counter()
    for design in designs:
        fn(design)
    return time.perf_counter() - start


def test_bench_corners():
    n_designs = budget(quick=8, paper=64)
    problem = make_problem("two_stage_opamp")
    rng = np.random.default_rng(11)
    rows = problem.design_space.sample(n_designs, rng)
    designs = [problem.design_space.as_dict(row) for row in rows]

    # -- OP-reuse speedup on a multi-analysis bench ---------------------- #
    bench = _multi_analysis_bench(problem)
    shared_sim = Simulator(reuse_op=True)
    naive_sim = Simulator(reuse_op=False)
    shared_s = _time_simulations(lambda d: shared_sim.run(bench, d), designs)
    naive_s = _time_simulations(lambda d: naive_sim.run(bench, d), designs)
    reuse_speedup = naive_s / shared_s if shared_s > 0 else float("inf")
    check = shared_sim.run(bench, GOOD_TWO_STAGE)
    assert check.ok and check.stats["n_op_solves"] == 1

    # -- nominal vs five-corner wall time -------------------------------- #
    nominal_s = _time_simulations(problem.simulate, designs)
    corner_problems = {name: make_problem("two_stage_opamp_corners",
                                          backend=name, max_workers=5)
                       for name in ("serial", "thread")}
    corner_seconds = {}
    try:
        for name, corner_problem in corner_problems.items():
            corner_problem.simulate(designs[0])  # warm any pool untimed
            corner_seconds[name] = _time_simulations(corner_problem.simulate,
                                                     designs)
    finally:
        for corner_problem in corner_problems.values():
            corner_problem.close()
    n_corners = len(corner_problems["serial"].corners)
    per_corner_overhead = corner_seconds["serial"] / (nominal_s * n_corners)

    record = {
        "n_designs": n_designs,
        "n_corners": n_corners,
        "op_reuse_speedup": round(reuse_speedup, 3),
        "bench_shared_s": round(shared_s, 4),
        "bench_naive_s": round(naive_s, 4),
        "nominal_s": round(nominal_s, 4),
        "corners_serial_s": round(corner_seconds["serial"], 4),
        "corners_thread_s": round(corner_seconds["thread"], 4),
        "corner_overhead_vs_ideal": round(per_corner_overhead, 3),
    }
    record_bench("BENCH_CORNERS", record)
    record_report(
        f"Testbench corners ({n_designs} designs): OP-reuse speedup "
        f"{reuse_speedup:.2f}x on a 4-analysis bench; 5-corner sweep "
        f"{corner_seconds['serial']:.2f}s serial / "
        f"{corner_seconds['thread']:.2f}s thread vs {nominal_s:.2f}s nominal "
        f"({per_corner_overhead:.2f}x the ideal {n_corners}x cost)")

    # Guard rails, generous for CI noise: sharing the bias must never lose,
    # and the five-corner sweep must stay within a sane multiple of nominal.
    assert reuse_speedup > 1.1
    assert corner_seconds["serial"] < nominal_s * n_corners * 3.0
