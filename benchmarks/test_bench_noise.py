"""Benchmark B-NOISE -- adjoint noise analysis and the new circuit families.

Not a paper figure: this benchmark guards the noise subsystem.  It measures

* the stacked-adjoint speedup: ``noise_analysis(method="vectorized")``
  (one ``(F, N, N)`` transposed solve) against the per-frequency reference
  loop on a registry op-amp bias, at the bench's default grid density, and
* the end-to-end evaluation cost of the scenario-expansion circuit
  families (``ldo``, ``comparator``, ``ring_vco``) whose benches exercise
  noise, transient and mixed analyses,

and emits one machine-readable ``BENCH_NOISE {json}`` line so CI can track
regressions, next to the usual human-readable table.
"""

from __future__ import annotations

import time

import numpy as np

from repro.circuits import make_problem
from repro.spice import dc_operating_point, noise_analysis

from conftest import budget, record_bench, record_report

GOOD_TWO_STAGE = dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6, l_load=0.5e-6,
                      w_out=60e-6, l_out=0.3e-6, c_comp=2e-12, r_zero=2e3,
                      i_bias1=20e-6, i_bias2=100e-6)
GOOD_LDO = dict(w_pass=100e-6, l_pass=0.5e-6, gm_ea=3e-3, r_ea=3e5,
                c_ea=5e-12, r_fb=2e4)
GOOD_COMPARATOR = dict(w_in=10e-6, l_in=0.18e-6, w_latch_n=4e-6,
                       w_latch_p=8e-6, w_tail=10e-6)
GOOD_RING = dict(w_n=5e-6, w_p=10e-6, l_gate=0.18e-6, c_stage=1e-12)


def _median_seconds(fn, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def test_bench_noise():
    repeats = budget(quick=3, paper=9)

    # -- adjoint sweep: stacked solve vs per-frequency reference --------- #
    problem = make_problem("two_stage_opamp")
    circuit = problem.build_circuit(GOOD_TWO_STAGE)
    op = dc_operating_point(circuit)
    assert op.converged
    frequencies = np.logspace(0, 9, 181)  # 20 points/decade
    vectorized = noise_analysis(circuit, op, frequencies, output="out",
                                method="vectorized")
    reference = noise_analysis(circuit, op, frequencies, output="out",
                               method="per_frequency")
    np.testing.assert_allclose(vectorized.output_psd, reference.output_psd,
                               rtol=1e-9)
    fast_s = _median_seconds(
        lambda: noise_analysis(circuit, op, frequencies, output="out",
                               method="vectorized"), repeats)
    slow_s = _median_seconds(
        lambda: noise_analysis(circuit, op, frequencies, output="out",
                               method="per_frequency"), repeats)
    adjoint_speedup = slow_s / fast_s if fast_s > 0 else float("inf")

    # -- per-family evaluation cost -------------------------------------- #
    families = {
        "ldo": (make_problem("ldo"), GOOD_LDO),
        "comparator": (make_problem("comparator"), GOOD_COMPARATOR),
        "ring_vco": (make_problem("ring_vco", t_stop=100e-9), GOOD_RING),
    }
    family_seconds = {}
    family_ok = {}
    for name, (family_problem, design) in families.items():
        metrics, ok = family_problem.simulate_checked(design)
        family_ok[name] = bool(ok)
        family_seconds[name] = _median_seconds(
            lambda p=family_problem, d=design: p.simulate(d),
            max(1, repeats - 1))
    assert all(family_ok.values()), family_ok

    lines = [
        "B-NOISE: adjoint noise sweep and family evaluation cost",
        f"  {frequencies.size}-pt sweep, {circuit.n_nodes} nodes: "
        f"vectorized {fast_s * 1e3:8.2f} ms | per-frequency "
        f"{slow_s * 1e3:8.2f} ms | speedup {adjoint_speedup:5.2f}x",
    ]
    for name, seconds in family_seconds.items():
        lines.append(f"  {name:<12} evaluation {seconds * 1e3:8.1f} ms")
    record_report("\n".join(lines))

    record_bench("BENCH_NOISE", {
        "n_frequencies": int(frequencies.size),
        "n_nodes": int(circuit.n_nodes),
        "vectorized_ms": round(fast_s * 1e3, 3),
        "per_frequency_ms": round(slow_s * 1e3, 3),
        "adjoint_speedup": round(adjoint_speedup, 3),
        "family_eval_ms": {name: round(seconds * 1e3, 1)
                           for name, seconds in family_seconds.items()},
    })

    # The stacked solve must never lose to the reference loop.
    assert adjoint_speedup > 1.0
