"""Benchmark E4 -- paper Table 1: optimal constrained designs at 180 nm.

Prints, for every circuit, the metrics of the best feasible design found by
each method plus the frozen human-expert reference -- the same rows Table 1
reports.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import format_table, run_table1

from conftest import record_report, SCALE, budget


def test_table1_constrained_designs(benchmark):
    def run():
        return run_table1(
            circuits=("two_stage_opamp",) if SCALE != "paper" else
                     ("two_stage_opamp", "three_stage_opamp", "bandgap"),
            methods=("mace", "kato") if SCALE != "paper" else
                    ("mesmoc", "usemoc", "mace", "kato"),
            technology="180nm",
            n_simulations=budget(55, 500),
            n_init=budget(30, 300),
            seed=0,
            quick=SCALE != "paper",
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for circuit, rows in table.items():
        record_report(format_table(rows, title=f"Table 1 -- {circuit} (180nm)"))
        print()
    # The human-expert rows must always be present and finite.
    for rows in table.values():
        assert "human_expert" in rows
        assert all(np.isfinite(v) for v in rows["human_expert"].values())
