"""Benchmark E1 -- paper Fig. 1(b): Neural Kernel regression assessment.

Regenerates the kernel comparison (RBF / RQ / Matern / DKL / Neuk) on a
two-stage OpAmp regression task and prints the per-kernel test RMSE the way
the paper's bar chart reports it.
"""

from __future__ import annotations

from repro.experiments import format_table, run_neuk_assessment

from conftest import record_report, budget


def _run():
    return run_neuk_assessment(
        n_train=budget(40, 100),
        n_test=budget(20, 50),
        train_iters=budget(60, 200),
        seed=0,
    )


def test_fig1_neuk_assessment(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    record_report(format_table(results, title="Fig. 1(b): kernel assessment "
                                      "(test RMSE on two-stage OpAmp gain)",
                       float_format="{:.3f}"))
    # Every kernel must produce a finite error; the Neural Kernel must be
    # competitive with (not catastrophically worse than) the best classic kernel.
    best_classic = min(results[name]["rmse"] for name in ("rbf", "rq", "matern52"))
    assert results["neuk"]["rmse"] < 5.0 * best_classic
