"""Benchmark E2 -- paper Fig. 4: FOM optimization (180 nm circuits).

Regenerates the FOM-versus-simulation-budget comparison between random
search, SMAC-RF, MACE and KATO.  The quick scale runs the two-stage OpAmp
only; the paper scale sweeps all three circuits.
"""

from __future__ import annotations

import pytest

from repro.experiments import curves_to_rows, format_table, run_fom_experiment
from repro.experiments.fom_experiment import fom_summary

from conftest import record_report, SCALE, budget

CIRCUITS = ["two_stage_opamp"] if SCALE != "paper" else [
    "two_stage_opamp", "three_stage_opamp", "bandgap"]


@pytest.mark.parametrize("circuit", CIRCUITS)
def test_fig4_fom_optimization(benchmark, circuit):
    def run():
        return run_fom_experiment(
            circuit=circuit,
            technology="180nm",
            methods=("rs", "smac_rf", "mace", "kato"),
            n_simulations=budget(40, 200),
            n_init=10,
            n_seeds=budget(1, 5),
            n_normalization_samples=budget(40, 10000),
            seed=0,
            quick=SCALE != "paper",
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    record_report(format_table(curves_to_rows(results),
                       title=f"Fig. 4 ({circuit}, 180nm): best FOM vs budget",
                       float_format="{:.3f}"))
    summary = fom_summary(results)
    # KATO must beat random search on final FOM (the paper's core ordering).
    assert summary["kato"] >= summary["rs"] - 0.05
