"""Benchmark T-TRAN -- transient solver accuracy and settling-scenario cost.

Not a paper figure: this benchmark guards the transient subsystem.  It
measures

* the transient solver's max error against the analytic RC step response at
  the default tolerances (the golden accuracy bar is <0.1%),
* the cost of one settling-scenario evaluation (full adaptive-timestep
  follower transient) and of a batch routed through the evaluation engine,
  including the design-cache hit on repeated designs,

and emits one machine-readable ``BENCH_TRANSIENT {json}`` record.  The
tolerance sweep (error-vs-reltol curve over several decades) is marked
``slow`` and runs in the nightly full suite.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.circuits import TwoStageOpAmpSettling
from repro.engine import EvaluationEngine
from repro.spice import (
    Capacitor,
    Circuit,
    Resistor,
    StepWaveform,
    VoltageSource,
    transient_analysis,
)

from conftest import budget, record_bench, record_report

_TAU = 1e-6


def _rc_circuit() -> Circuit:
    """1k / 1n RC low-pass driven by a unit step at t = 0."""
    circuit = Circuit("rc_bench")
    circuit.add(VoltageSource("VIN", "in", "0", dc=0.0,
                              waveform=StepWaveform(0.0, 1.0)))
    circuit.add(Resistor("R1", "in", "out", 1e3))
    circuit.add(Capacitor("C1", "out", "0", 1e-9))
    return circuit


def _rc_max_error(reltol: float) -> tuple[float, int]:
    result = transient_analysis(_rc_circuit(), 5 * _TAU, observe=["out"],
                                reltol=reltol)
    analytic = 1.0 - np.exp(-result.times / _TAU)
    return float(np.max(np.abs(result.voltage("out") - analytic))), result.n_accepted


def test_transient_accuracy_and_settling_cost(benchmark):
    rc_error, rc_steps = benchmark.pedantic(_rc_max_error, args=(1e-4,),
                                            rounds=1, iterations=1)
    # The golden accuracy bar: <0.1% of the 1 V step at default tolerances.
    assert rc_error < 1e-3

    problem = TwoStageOpAmpSettling("180nm")
    n_designs = budget(4, 16)
    x = problem.design_space.sample(n_designs, rng=np.random.default_rng(2025))
    engine = EvaluationEngine(problem)
    start = time.perf_counter()
    evaluations = engine.evaluate_batch(x)
    batch_seconds = time.perf_counter() - start
    # Repeating the batch must be served from the design cache.
    start = time.perf_counter()
    repeated = engine.evaluate_batch(x)
    cached_seconds = time.perf_counter() - start
    for fresh, cached in zip(evaluations, repeated):
        np.testing.assert_array_equal(
            [fresh.metrics[m] for m in problem.metric_names],
            [cached.metrics[m] for m in problem.metric_names])
    stats = engine.stats()
    assert stats["cache"]["hits"] >= n_designs

    record = {
        "benchmark": "transient",
        "rc_max_error": round(rc_error, 8),
        "rc_steps": rc_steps,
        "n_designs": n_designs,
        "batch_seconds": round(batch_seconds, 4),
        "designs_per_sec": round(n_designs / batch_seconds, 3),
        "cached_batch_seconds": round(cached_seconds, 4),
        "cache_hit_rate": round(stats["cache"]["hit_rate"], 4),
    }
    record_bench("BENCH_TRANSIENT", record)
    record_report(
        f"Transient solver (RC golden + settling scenario, {n_designs} designs):\n"
        f"  RC max error vs analytic: {rc_error:.2e} ({rc_steps} steps)\n"
        f"  settling batch: {batch_seconds:.2f} s "
        f"({n_designs / batch_seconds:.2f} designs/sec), "
        f"cached replay {cached_seconds * 1e3:.1f} ms")


@pytest.mark.slow
def test_transient_tolerance_sweep():
    """Error-vs-tolerance curve: tighter reltol must buy lower error."""
    reltols = (1e-3, 1e-4, 1e-5, 1e-6)
    errors, steps = [], []
    for reltol in reltols:
        error, n_steps = _rc_max_error(reltol)
        errors.append(error)
        steps.append(n_steps)
    # Monotone within a decade of slack: each 10x tolerance tightening must
    # not make the solution worse, and the tightest setting must beat the
    # loosest by at least 10x.
    for loose, tight in zip(errors, errors[1:]):
        assert tight <= loose * 1.5
    assert errors[-1] < errors[0] / 10.0
    record_bench("BENCH_TRANSIENT_TOLERANCE_SWEEP", {
        "benchmark": "transient_tolerance_sweep",
        "reltols": list(reltols),
        "max_errors": [round(e, 10) for e in errors],
        "n_steps": steps,
    })
    record_report("Transient tolerance sweep (RC step):\n" + "\n".join(
        f"  reltol {reltol:.0e}: max error {error:.2e} ({n} steps)"
        for reltol, error, n in zip(reltols, errors, steps)))
