"""Telemetry zero-overhead guard (BENCH_TELEMETRY).

The instrumentation contract is that telemetry costs nothing when disabled:
every hook in the solver hot path is one module-level flag check or a
shared null span.  This benchmark measures the shipped solver (telemetry
present but disabled) against a *stub baseline* -- the same solve with the
``telemetry`` module monkeypatched to bare no-ops, i.e. what the code would
cost had it never been instrumented -- on the B=64 batched DC workload, and
fails if the disabled path is more than 2% slower (plus a small absolute
slack that absorbs shared-runner jitter on a ~0.5 s solve).

Timings interleave baseline and disabled runs and take best-of, so slow
drift (thermal, noisy neighbours) hits both sides equally.  The enabled
path is timed too and reported for information only -- span capture and
per-solve stats recording are allowed to cost something.

Emits one BENCH_TELEMETRY record::

    BENCH_TELEMETRY {"baseline_s": ..., "disabled_s": ..., "enabled_s": ...,
                     "overhead_disabled_pct": ..., "overhead_enabled_pct": ...,
                     "batch": 64, "repeats": ...}
"""

import time

from conftest import budget, record_bench

from repro import telemetry
from repro.circuits import make_problem
from repro.mc.samplers import make_sampler
from repro.spice import dc as dc_module
from repro.spice import dc_operating_point_batch

GOOD_DESIGN = dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6, l_load=0.5e-6,
                   w_out=60e-6, l_out=0.3e-6, c_comp=2e-12, r_zero=2e3,
                   i_bias1=20e-6, i_bias2=100e-6)

BATCH = 64
REPEATS = budget(quick=5, paper=9)

#: Allowed disabled-vs-baseline overhead: 2% relative, with an absolute
#: slack for timer/runner jitter (the true per-solve instrumentation cost
#: is a handful of flag checks, i.e. microseconds).
OVERHEAD_LIMIT = 0.02
ABSOLUTE_SLACK_S = 0.025


class _StubSpan:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_STUB_SPAN = _StubSpan()


class _StubTelemetry:
    """What the solver would link against had it never been instrumented."""

    SECONDS_BUCKETS = telemetry.SECONDS_BUCKETS
    ITERATION_BUCKETS = telemetry.ITERATION_BUCKETS
    FRACTION_BUCKETS = telemetry.FRACTION_BUCKETS

    @staticmethod
    def enabled():
        return False

    @staticmethod
    def span(name, **args):
        return _STUB_SPAN

    @staticmethod
    def inc(name, value=1):
        pass

    @staticmethod
    def observe(name, value, buckets=None):
        pass

    @staticmethod
    def record_solve(stats):
        pass


def _mc_circuits(count):
    """``count`` mismatch variations of the good two-stage design."""
    problem = make_problem("two_stage_opamp")
    sampler = make_sampler("normal", problem.mismatch_device_names(),
                           seed=7, n_max=count)
    return [p.bench.builders["main"](GOOD_DESIGN)
            for p in (problem.with_variation(sample)
                      for sample in sampler.take(0, count))]


def _timed_solve(circuits) -> float:
    start = time.perf_counter()
    dc_operating_point_batch(circuits)
    return time.perf_counter() - start


def test_disabled_telemetry_overhead(monkeypatch):
    circuits = _mc_circuits(BATCH)
    telemetry.disable()
    _timed_solve(circuits)  # warm-up: imports, allocator, branch caches

    def _baseline_solve():
        with monkeypatch.context() as patched:
            patched.setattr(dc_module, "telemetry", _StubTelemetry)
            return _timed_solve(circuits)

    # Alternate which side goes first so cache warmth and slow drift do not
    # systematically favour either measurement.
    baseline_times, disabled_times = [], []
    for repeat in range(REPEATS):
        if repeat % 2 == 0:
            baseline_times.append(_baseline_solve())
            disabled_times.append(_timed_solve(circuits))
        else:
            disabled_times.append(_timed_solve(circuits))
            baseline_times.append(_baseline_solve())
    baseline = min(baseline_times)
    disabled = min(disabled_times)

    telemetry.reset()
    telemetry.enable()
    try:
        enabled = min(_timed_solve(circuits) for _ in range(REPEATS))
    finally:
        telemetry.disable()
        telemetry.reset()

    record = {
        "workload": f"two_stage_opamp mismatch MC, B={BATCH} batched DC",
        "repeats": REPEATS, "batch": BATCH,
        "baseline_s": round(baseline, 4),
        "disabled_s": round(disabled, 4),
        "enabled_s": round(enabled, 4),
        "overhead_disabled_pct": round(100.0 * (disabled / baseline - 1.0), 2),
        "overhead_enabled_pct": round(100.0 * (enabled / baseline - 1.0), 2),
        "limit_pct": 100.0 * OVERHEAD_LIMIT,
    }
    record_bench("BENCH_TELEMETRY", record)

    assert disabled <= baseline * (1.0 + OVERHEAD_LIMIT) + ABSOLUTE_SLACK_S, (
        f"disabled telemetry costs {record['overhead_disabled_pct']}% over "
        f"the uninstrumented baseline ({disabled:.4f}s vs {baseline:.4f}s); "
        f"the disabled path must stay within {100.0 * OVERHEAD_LIMIT}%")
