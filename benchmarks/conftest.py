"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures at a reduced
budget by default, so ``pytest benchmarks/ --benchmark-only`` finishes in
minutes on a laptop.  Set ``KATO_BENCH_SCALE=paper`` in the environment to run
the full, paper-scale budgets (hours).
"""

from __future__ import annotations

import os

import pytest

SCALE = os.environ.get("KATO_BENCH_SCALE", "quick").lower()

#: Formatted tables recorded by the benchmarks, echoed after the run so they
#: survive pytest's stdout capture (these are the rows/series the paper reports).
_REPORTS: list[str] = []


def budget(quick: int, paper: int) -> int:
    """Pick the simulation budget for the current benchmark scale."""
    return paper if SCALE == "paper" else quick


def record_report(text: str) -> None:
    """Print a regenerated paper table and keep it for the end-of-run summary."""
    print(text)
    _REPORTS.append(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", f"regenerated paper tables/figures ({SCALE} scale)")
    for text in _REPORTS:
        terminalreporter.write_line(text)
        terminalreporter.write_line("")


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return SCALE
