"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures at a reduced
budget by default, so ``pytest benchmarks/ --benchmark-only`` finishes in
minutes on a laptop.  Set ``KATO_BENCH_SCALE=paper`` in the environment to run
the full, paper-scale budgets (hours).
"""

from __future__ import annotations

import json
import os

import pytest

SCALE = os.environ.get("KATO_BENCH_SCALE", "quick").lower()

#: When set, every machine-readable BENCH record is also appended (as JSON
#: lines) to this file, so CI can upload the records as a workflow artifact.
BENCH_RECORDS_PATH = os.environ.get("KATO_BENCH_RECORDS", "")

#: Every BENCH record also lands in a per-benchmark ``BENCH_<name>.json``
#: here (the repo root, git-ignored), in the shape ``python -m repro db
#: ingest-bench`` reads, so local runs flow into a results store with no
#: extra flags.  Point ``KATO_BENCH_DIR`` elsewhere to redirect.
BENCH_DIR = os.environ.get(
    "KATO_BENCH_DIR", os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

#: Formatted tables recorded by the benchmarks, echoed after the run so they
#: survive pytest's stdout capture (these are the rows/series the paper reports).
_REPORTS: list[str] = []


def budget(quick: int, paper: int) -> int:
    """Pick the simulation budget for the current benchmark scale."""
    return paper if SCALE == "paper" else quick


def record_report(text: str) -> None:
    """Print a regenerated paper table and keep it for the end-of-run summary."""
    print(text)
    _REPORTS.append(text)


def record_bench(name: str, record: dict) -> None:
    """Emit one machine-readable ``NAME {json}`` line for CI regression tracking.

    The line goes to stdout (greppable in the pytest log); when
    ``KATO_BENCH_RECORDS`` names a file, to that JSONL file as well so the
    records survive as a workflow artifact; and always to
    ``BENCH_<name>.json`` under ``KATO_BENCH_DIR`` for ``db ingest-bench``.
    """
    print()
    print(f"{name} " + json.dumps(record, sort_keys=True))
    if BENCH_RECORDS_PATH:
        with open(BENCH_RECORDS_PATH, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"bench_record": name, **record},
                                    sort_keys=True) + "\n")
    _append_bench_json(name, record)


def _append_bench_json(name: str, record: dict) -> None:
    """Accumulate a record into this benchmark's ``BENCH_<name>.json``."""
    path = os.path.join(BENCH_DIR, f"{name}.json")
    payload = {"name": name, "records": []}
    try:
        with open(path, encoding="utf-8") as handle:
            existing = json.load(handle)
        if isinstance(existing.get("records"), list):
            payload = existing
    except (OSError, ValueError):
        pass  # absent or corrupt: start fresh
    payload["records"].append(record)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", f"regenerated paper tables/figures ({SCALE} scale)")
    for text in _REPORTS:
        terminalreporter.write_line(text)
        terminalreporter.write_line("")


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return SCALE
