"""Benchmark E11: the paper's headline claims.

The abstract promises "up to 2x simulation reduction and 1.2x design
improvement over the baselines".  This benchmark computes both ratios from a
head-to-head KATO-vs-MACE constrained run, printing the speedup (simulations
needed to reach the baseline's best) and the improvement ratio of the final
objective.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import (
    format_table,
    improvement_ratio,
    run_constrained_experiment,
    speedup_ratio,
)

from conftest import record_report, SCALE, budget


def test_headline_speedup_and_improvement(benchmark):
    def run():
        return run_constrained_experiment(
            circuit="two_stage_opamp",
            technology="180nm",
            methods=("mace", "kato"),
            n_simulations=budget(60, 500),
            n_init=budget(30, 300),
            n_seeds=budget(1, 5),
            seed=0,
            quick=SCALE != "paper",
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    kato_curve = results["kato"]["summary"]["mean"]
    mace_curve = results["mace"]["summary"]["mean"]
    finite = np.isfinite(kato_curve) & np.isfinite(mace_curve)
    rows = {}
    if finite.any():
        kato_c = np.where(np.isfinite(kato_curve), kato_curve, np.nanmax(kato_curve[finite]))
        mace_c = np.where(np.isfinite(mace_curve), mace_curve, np.nanmax(mace_curve[finite]))
        rows["kato_vs_mace"] = {
            "speedup_x": speedup_ratio(kato_c, mace_c, minimize=True),
            "improvement_x": improvement_ratio(kato_c[-1], mace_c[-1], minimize=True),
            "kato_final_uA": float(kato_c[-1]),
            "mace_final_uA": float(mace_c[-1]),
        }
    print()
    record_report(format_table(rows, title="Headline claims (paper: ~2x speedup, ~1.2x improvement)",
                       float_format="{:.2f}"))
    assert rows, "no feasible designs found by either method -- increase the budget"
