"""Benchmark E6 -- paper Fig. 6(c-d): transfer learning across topologies.

Source and target are different op-amp topologies at the same 40 nm node, so
the design spaces have different dimensionality -- the setting only KAT-GP's
encoder/decoder alignment supports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import curves_to_rows, format_table, run_transfer_experiment

from conftest import record_report, SCALE, budget

PANELS = [("three_stage_opamp", "two_stage_opamp", "c")] if SCALE != "paper" else [
    ("three_stage_opamp", "two_stage_opamp", "c"),
    ("two_stage_opamp", "three_stage_opamp", "d"),
]


@pytest.mark.parametrize("source_circuit,target_circuit,panel", PANELS)
def test_fig6_design_transfer(benchmark, source_circuit, target_circuit, panel):
    def run():
        return run_transfer_experiment(
            source_circuit=source_circuit, source_technology="40nm",
            target_circuit=target_circuit, target_technology="40nm",
            constrained=True,
            n_source_samples=budget(60, 200),
            n_simulations=budget(50, 400),
            n_init=budget(25, 200),
            n_seeds=budget(1, 5),
            seed=0,
            quick=SCALE != "paper",
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    record_report(format_table(curves_to_rows(results),
                       title=f"Fig. 6({panel}): {source_circuit} -> {target_circuit} (40nm)",
                       float_format="{:.2f}"))
    assert np.isfinite(results["kato_tl"]["summary"]["mean"][-1])
