"""Benchmark E10 (ablation): selective transfer vs always / never transfer.

Backs the paper's section 3.4 motivation: with a deliberately mismatched
source circuit (a bandgap transferred onto an op-amp), blindly trusting the
transfer model is risky; STL hedges between the transfer model and the
target-only model.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import format_table, run_stl_ablation

from conftest import record_report, SCALE, budget


def test_ablation_selective_transfer(benchmark):
    def run():
        return run_stl_ablation(
            target_circuit="two_stage_opamp",
            target_technology="40nm",
            mismatched_source_circuit="bandgap",
            n_source_samples=budget(40, 200),
            n_simulations=budget(44, 300),
            n_init=budget(24, 150),
            n_seeds=budget(1, 5),
            seed=0,
            quick=SCALE != "paper",
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    record_report(format_table(results, title="Ablation: selective transfer learning",
                       float_format="{:.2f}"))
    for mode in ("stl", "always", "never"):
        assert mode in results
