"""Batched-tensor simulation core throughput (BENCH_BATCHED[_TRAN]).

Measures the stacked DC Newton, stacked AC and batched transient solves
against their serial per-design counterparts at batch sizes 1, 8 and 64 on
the two-stage opamp (a Monte Carlo style workload: mismatch variations of
one good design), and locates the dense-vs-sparse crossover on resistor
ladders of growing size.  Bit-identity of every batched result against its
serial twin is asserted inline -- a throughput number for a solver that
drifts would be meaningless.

Emits one BENCH_BATCHED JSON record::

    BENCH_BATCHED {"dc": {"1": {...}, "8": {...}, "64": {...}},
                   "ac": {...}, "crossover": [...],
                   "speedup_dc_b64": 6.9, ...}

plus one BENCH_BATCHED_TRAN record for the settling-style transient
workload::

    BENCH_BATCHED_TRAN {"tran": {"1": {...}, "8": {...}, "64": {...}},
                        "speedup_tran_b64": 3.9, ...}

The nightly lane tracks ``speedup_dc_b64`` (acceptance floor: >= 4x single
core at B=64) and ``speedup_tran_b64`` (floor: >= 2x at B=64 -- the
transient batch carries per-design controller work the DC batch does not).
"""

import time

import numpy as np
import pytest
from conftest import budget, record_bench, record_report

from repro.circuits import make_problem
from repro.errors import ConvergenceError
from repro.mc.samplers import make_sampler
from repro.spice import (
    Circuit,
    Resistor,
    VoltageSource,
    ac_analysis,
    ac_analysis_batch,
    dc_operating_point,
    dc_operating_point_batch,
    transient_analysis,
    transient_analysis_batch,
)

GOOD_DESIGN = dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6, l_load=0.5e-6,
                   w_out=60e-6, l_out=0.3e-6, c_comp=2e-12, r_zero=2e3,
                   i_bias1=20e-6, i_bias2=100e-6)

#: timing repeats (best-of): quick for PR smoke, paper for the nightly lane
REPEATS = budget(quick=2, paper=5)
BATCH_SIZES = (1, 8, 64)


def _best_of(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _mc_problems(count: int):
    """``count`` mismatch variations of the good two-stage design."""
    problem = make_problem("two_stage_opamp")
    sampler = make_sampler("normal", problem.mismatch_device_names(),
                           seed=7, n_max=count)
    return problem, [problem.with_variation(sample)
                     for sample in sampler.take(0, count)]


def _ladder(n_resistors: int) -> Circuit:
    circuit = Circuit(f"ladder{n_resistors}")
    circuit.add(VoltageSource("V1", "n0", "0", dc=1.0))
    for i in range(n_resistors):
        circuit.add(Resistor(f"R{i}", f"n{i}", f"n{i + 1}", 1e3))
    circuit.add(Resistor("RL", f"n{n_resistors}", "0", 1e3))
    return circuit


@pytest.mark.slow
def test_batched_throughput(benchmark):
    problem, varied = _mc_problems(max(BATCH_SIZES))
    builder_key = "main"

    def circuits(count):
        return [p.bench.builders[builder_key](GOOD_DESIGN)
                for p in varied[:count]]

    record: dict = {"workload": "two_stage_opamp mismatch MC",
                    "repeats": REPEATS, "dc": {}, "ac": {}}

    # -- DC: serial loop vs stacked Newton, with inline bit-identity ----- #
    serial_ops = [dc_operating_point(c) for c in circuits(max(BATCH_SIZES))]
    batched_ops = dc_operating_point_batch(circuits(max(BATCH_SIZES)))
    for op_serial, op_batched in zip(serial_ops, batched_ops):
        assert op_serial.converged == op_batched.converged
        assert op_serial.iterations == op_batched.iterations
        assert np.array_equal(op_serial.voltages, op_batched.voltages,
                              equal_nan=True)

    for size in BATCH_SIZES:
        t_serial = _best_of(
            lambda size=size: [dc_operating_point(c) for c in circuits(size)],
            REPEATS)
        t_batched = _best_of(
            lambda size=size: dc_operating_point_batch(circuits(size)),
            REPEATS)
        record["dc"][str(size)] = {
            "serial_s": round(t_serial, 4),
            "batched_s": round(t_batched, 4),
            "speedup": round(t_serial / t_batched, 2),
            "designs_per_s": round(size / t_batched, 1),
        }

    # -- AC: per-design loop vs (B, F, N, N) stacked solve --------------- #
    frequencies = problem.ac_frequencies
    ac_circuits = circuits(max(BATCH_SIZES))
    converged = [(circuit, op) for circuit, op in zip(ac_circuits, serial_ops)
                 if op.converged]
    ac_batched = ac_analysis_batch([c for c, _ in converged],
                                   [op for _, op in converged],
                                   frequencies, observe=["out"])
    for (circuit, op), res_batched in zip(converged, ac_batched):
        res_serial = ac_analysis(circuit, op, frequencies, observe=["out"])
        assert np.array_equal(res_serial.node_voltages["out"],
                              res_batched.node_voltages["out"])
    for size in BATCH_SIZES:
        # Mismatch sampling leaves a few non-convergent designs; clamp the
        # largest AC batch to what actually converged.
        subset = converged[:min(size, len(converged))]
        if len(subset) < min(size, len(converged)) or not subset:
            continue
        size = len(subset)
        t_serial = _best_of(
            lambda subset=subset: [ac_analysis(c, op, frequencies,
                                               observe=["out"])
                                   for c, op in subset], REPEATS)
        t_batched = _best_of(
            lambda subset=subset: ac_analysis_batch(
                [c for c, _ in subset], [op for _, op in subset],
                frequencies, observe=["out"]), REPEATS)
        record["ac"][str(size)] = {
            "serial_s": round(t_serial, 4),
            "batched_s": round(t_batched, 4),
            "speedup": round(t_serial / t_batched, 2),
        }

    # -- dense vs sparse crossover on growing ladders -------------------- #
    crossover = []
    for n_resistors in budget(quick=(40, 120), paper=(40, 120, 240, 400)):
        batch = [_ladder(n_resistors) for _ in range(8)]
        t_dense = _best_of(
            lambda batch=batch: dc_operating_point_batch(batch,
                                                         solver="dense"),
            REPEATS)
        t_sparse = _best_of(
            lambda batch=batch: dc_operating_point_batch(batch,
                                                         solver="sparse"),
            REPEATS)
        crossover.append({"n_nodes": n_resistors + 1,
                          "dense_s": round(t_dense, 4),
                          "sparse_s": round(t_sparse, 4),
                          "sparse_faster": bool(t_sparse < t_dense)})
    record["crossover"] = crossover

    speedup_b64 = record["dc"]["64"]["speedup"]
    record["speedup_dc_b64"] = speedup_b64
    # Acceptance floor with headroom below the ~7x measured on an idle
    # core: a shared CI box must still clear it comfortably.
    assert speedup_b64 >= 4.0, (
        f"batched DC at B=64 regressed to {speedup_b64}x (< 4x floor)")

    record_bench("BENCH_BATCHED", record)
    lines = ["batched-core throughput (serial time / batched time)",
             "analysis | batch size | speedup"]
    for analysis in ("dc", "ac"):
        for size, row in sorted(record[analysis].items(), key=lambda kv: int(kv[0])):
            lines.append(f"{analysis:>8} | {size:>10} | {row['speedup']:>6}x")
    record_report("\n".join(lines))

    benchmark.pedantic(lambda: dc_operating_point_batch(circuits(64)),
                       rounds=1, iterations=1)


@pytest.mark.slow
def test_batched_transient_throughput(benchmark):
    problem, varied = _mc_problems(max(BATCH_SIZES))
    t_stop = 4e-7  # enough of the settling window for ~100 steps per design

    def circuits(count):
        return [p.bench.builders["main"](GOOD_DESIGN)
                for p in varied[:count]]

    record: dict = {"workload": "two_stage_opamp settling mismatch MC",
                    "t_stop": t_stop, "repeats": REPEATS, "tran": {}}

    # -- inline bit-identity over the full batch before any timing ------- #
    serial_results: list = []
    for circuit in circuits(max(BATCH_SIZES)):
        try:
            serial_results.append(
                transient_analysis(circuit, t_stop, observe=["out"]))
        except ConvergenceError as exc:
            serial_results.append(exc)
    batched_results = transient_analysis_batch(
        circuits(max(BATCH_SIZES)), t_stop, observe=["out"],
        return_errors=True)
    for res_serial, res_batched in zip(serial_results, batched_results):
        if isinstance(res_serial, Exception):
            assert type(res_batched) is type(res_serial)
            assert str(res_batched) == str(res_serial)
            continue
        assert np.array_equal(res_serial.times, res_batched.times)
        assert np.array_equal(res_serial.node_voltages["out"],
                              res_batched.node_voltages["out"])
        assert res_serial.n_accepted == res_batched.n_accepted
        assert res_serial.n_rejected == res_batched.n_rejected
        assert res_serial.n_newton_iterations == res_batched.n_newton_iterations

    # -- serial per-design loop vs one batched run ----------------------- #
    def run_serial(count):
        for circuit in circuits(count):
            try:
                transient_analysis(circuit, t_stop, observe=["out"])
            except ConvergenceError:
                pass

    for size in BATCH_SIZES:
        t_serial = _best_of(lambda size=size: run_serial(size), REPEATS)
        t_batched = _best_of(
            lambda size=size: transient_analysis_batch(
                circuits(size), t_stop, observe=["out"], return_errors=True),
            REPEATS)
        record["tran"][str(size)] = {
            "serial_s": round(t_serial, 4),
            "batched_s": round(t_batched, 4),
            "speedup": round(t_serial / t_batched, 2),
            "designs_per_s": round(size / t_batched, 1),
        }

    speedup_b64 = record["tran"]["64"]["speedup"]
    record["speedup_tran_b64"] = speedup_b64
    # Acceptance floor with headroom below the ~4x measured on an idle core.
    # The transient batch keeps the per-design adaptive controllers in
    # Python, so its ceiling sits below the DC batch's.
    assert speedup_b64 >= 2.0, (
        f"batched transient at B=64 regressed to {speedup_b64}x (< 2x floor)")

    record_bench("BENCH_BATCHED_TRAN", record)
    lines = ["batched transient throughput (serial time / batched time)",
             "analysis | batch size | speedup"]
    for size, row in sorted(record["tran"].items(), key=lambda kv: int(kv[0])):
        lines.append(f"    tran | {size:>10} | {row['speedup']:>6}x")
    record_report("\n".join(lines))

    benchmark.pedantic(
        lambda: transient_analysis_batch(circuits(64), t_stop,
                                         observe=["out"], return_errors=True),
        rounds=1, iterations=1)
