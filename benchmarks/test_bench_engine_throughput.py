"""Benchmark E-ENGINE -- evaluation-engine throughput.

Not a paper figure: this benchmark guards the scaling work.  It measures

* ``evaluate_batch`` throughput (designs/sec) on the two-stage op-amp under
  each execution backend, and
* the AC-analysis speedup from the vectorized stacked-frequency solve over
  the per-frequency reference loop,

and emits one machine-readable ``BENCH_ENGINE_THROUGHPUT {json}`` line so CI
can track regressions, next to the usual human-readable table.
"""

from __future__ import annotations

import time

import numpy as np

from repro.circuits import TwoStageOpAmp
from repro.engine import EvaluationEngine, resolve_backend
from repro.spice import ac_analysis, dc_operating_point

from conftest import budget, record_bench, record_report

BACKENDS = ("serial", "thread", "process")


def _measure_backend(backend_name: str, x: np.ndarray) -> dict[str, float]:
    problem = TwoStageOpAmp("180nm")
    engine = EvaluationEngine(problem, backend=resolve_backend(backend_name),
                              cache=False)
    try:
        # Warm the pool outside the timed region (a 2-row batch: single-row
        # batches bypass the pool entirely and would not create it).
        engine.evaluate_batch(x[:2])
        start = time.perf_counter()
        results = engine.evaluate_batch(x)
        elapsed = time.perf_counter() - start
    finally:
        engine.close()
    objectives = [r.objective for r in results]
    return {"seconds": elapsed, "designs_per_sec": len(results) / elapsed,
            "objectives": objectives}


def _measure_ac_speedup(problem: TwoStageOpAmp, x: np.ndarray,
                        repeats: int) -> dict[str, float]:
    """Vectorized vs per-frequency AC wall-clock on one converged design."""
    for row in x:
        circuit = problem.build_circuit(problem.design_space.as_dict(row))
        op = dc_operating_point(circuit)
        if op.converged:
            break
    else:  # pragma: no cover - the fixed seed always converges somewhere
        raise RuntimeError("no converged design in the benchmark batch")
    frequencies = problem.ac_frequencies
    timings = {}
    for method in ("vectorized", "per_frequency"):
        start = time.perf_counter()
        for _ in range(repeats):
            ac_analysis(circuit, op, frequencies, observe=["out"], method=method)
        timings[method] = (time.perf_counter() - start) / repeats
    return {"vectorized_sec": timings["vectorized"],
            "per_frequency_sec": timings["per_frequency"],
            "speedup": timings["per_frequency"] / timings["vectorized"]}


def test_engine_throughput(benchmark):
    problem = TwoStageOpAmp("180nm")
    n_designs = budget(8, 32)
    x = problem.design_space.sample(n_designs, rng=np.random.default_rng(2024))

    results = {name: benchmark.pedantic(_measure_backend, args=(name, x),
                                        rounds=1, iterations=1) if name == "serial"
               else _measure_backend(name, x)
               for name in BACKENDS}
    ac = _measure_ac_speedup(problem, x, repeats=budget(10, 50))

    # All backends must agree on the numbers they produced.
    reference = results["serial"]["objectives"]
    for name in BACKENDS:
        np.testing.assert_allclose(results[name]["objectives"], reference,
                                   rtol=1e-12, atol=1e-12)
    # The stacked solve must actually beat the per-frequency loop (it is
    # ~13x here); dropping below 1x means the vectorization regressed.
    assert ac["speedup"] > 1.0

    record = {
        "benchmark": "engine_throughput",
        "n_designs": n_designs,
        "backends": {name: {"seconds": round(results[name]["seconds"], 4),
                            "designs_per_sec": round(results[name]["designs_per_sec"], 2)}
                     for name in BACKENDS},
        "ac_vectorization": {key: round(value, 6) for key, value in ac.items()},
    }
    record_bench("BENCH_ENGINE_THROUGHPUT", record)

    lines = ["Engine throughput (two-stage op-amp, "
             f"{n_designs}-design batch):"]
    for name in BACKENDS:
        lines.append(f"  {name:<8} {results[name]['designs_per_sec']:8.2f} designs/sec"
                     f"  ({results[name]['seconds']:.3f} s)")
    lines.append(f"  AC vectorization speedup: {ac['speedup']:.1f}x "
                 f"({ac['per_frequency_sec'] * 1e3:.2f} ms -> "
                 f"{ac['vectorized_sec'] * 1e3:.2f} ms per sweep)")
    record_report("\n".join(lines))
