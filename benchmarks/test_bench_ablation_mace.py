"""Benchmark E9 (ablation): six-objective vs three-objective constrained MACE.

Backs the paper's section 3.3 claim that reducing the acquisition Pareto
search from six objectives to three keeps the optimisation quality while
cutting the acquisition cost.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import format_table, run_mace_ablation

from conftest import record_report, SCALE, budget


def test_ablation_mace_objective_count(benchmark):
    def run():
        return run_mace_ablation(
            circuit="two_stage_opamp",
            technology="180nm",
            n_simulations=budget(50, 300),
            n_init=budget(25, 150),
            n_seeds=budget(1, 5),
            seed=0,
            quick=SCALE != "paper",
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    record_report(format_table(results, title="Ablation: constrained-MACE acquisition ensembles",
                       float_format="{:.2f}"))
    assert np.isfinite(results["mace_modified"]["mean_best_objective"])
    assert results["mace_modified"]["mean_wall_time_s"] > 0
