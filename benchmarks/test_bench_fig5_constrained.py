"""Benchmark E3 -- paper Fig. 5: constrained optimization (180 nm circuits).

Regenerates the best-feasible-objective-versus-budget comparison between
MESMOC, USeMOC, constrained MACE and KATO.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import curves_to_rows, format_table, run_constrained_experiment

from conftest import record_report, SCALE, budget

CIRCUITS = ["two_stage_opamp"] if SCALE != "paper" else [
    "two_stage_opamp", "three_stage_opamp", "bandgap"]


@pytest.mark.parametrize("circuit", CIRCUITS)
def test_fig5_constrained_optimization(benchmark, circuit):
    def run():
        return run_constrained_experiment(
            circuit=circuit,
            technology="180nm",
            methods=("mesmoc", "usemoc", "mace", "kato"),
            n_simulations=budget(60, 500),
            n_init=budget(30, 300),
            n_seeds=budget(1, 5),
            seed=0,
            quick=SCALE != "paper",
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    record_report(format_table(curves_to_rows(results),
                       title=f"Fig. 5 ({circuit}, 180nm): best feasible objective vs budget",
                       float_format="{:.2f}"))
    # Every method must produce a finite (feasible) incumbent by the end of
    # the run on the quick budget at least for KATO.
    kato_final = results["kato"]["summary"]["mean"][-1]
    assert np.isfinite(kato_final)
