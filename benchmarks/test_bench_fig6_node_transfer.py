"""Benchmark E5 -- paper Fig. 6(a-b): transfer learning across technology nodes.

Source: a circuit at 180 nm; target: the same circuit at 40 nm.  Compares
KATO with and without transfer (plus TLMBO in the FOM setting on paper scale).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import curves_to_rows, format_table, run_transfer_experiment

from conftest import record_report, SCALE, budget

PANELS = [("two_stage_opamp", "a")] if SCALE != "paper" else [
    ("two_stage_opamp", "a"), ("three_stage_opamp", "b")]


@pytest.mark.parametrize("circuit,panel", PANELS)
def test_fig6_node_transfer(benchmark, circuit, panel):
    def run():
        return run_transfer_experiment(
            source_circuit=circuit, source_technology="180nm",
            target_circuit=circuit, target_technology="40nm",
            constrained=True,
            n_source_samples=budget(60, 200),
            n_simulations=budget(50, 400),
            n_init=budget(25, 200),
            n_seeds=budget(1, 5),
            seed=0,
            quick=SCALE != "paper",
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    record_report(format_table(curves_to_rows(results),
                       title=f"Fig. 6({panel}): {circuit} 180nm -> 40nm "
                             "(best feasible I_total vs budget)",
                       float_format="{:.2f}"))
    assert np.isfinite(results["kato_tl"]["summary"]["mean"][-1])
