"""Benchmark E8 -- paper Table 2: optimal 40 nm designs with transfer variants.

Compares KATO, KATO (TL Node), KATO (TL Design) and KATO (TL Node&Design)
against the human-expert reference at 40 nm, printing the same metric rows as
the paper's Table 2.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import format_table, run_table2

from conftest import record_report, SCALE, budget


def test_table2_transfer_designs(benchmark):
    def run():
        return run_table2(
            circuits=("two_stage_opamp",) if SCALE != "paper" else
                     ("two_stage_opamp", "three_stage_opamp"),
            variants=("kato", "kato_tl_node") if SCALE != "paper" else
                     ("kato", "kato_tl_node", "kato_tl_design", "kato_tl_both"),
            n_simulations=budget(50, 400),
            n_init=budget(25, 200),
            n_source_samples=budget(50, 200),
            seed=0,
            quick=SCALE != "paper",
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for circuit, rows in table.items():
        record_report(format_table(rows, title=f"Table 2 -- {circuit} (40nm)"))
        print()
    for rows in table.values():
        assert "human_expert" in rows and "kato" in rows
        assert all(np.isfinite(v) for v in rows["human_expert"].values())
