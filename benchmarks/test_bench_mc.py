"""Benchmark B-MC -- Monte Carlo mismatch throughput and accuracy.

Not a paper figure: this benchmark guards the Monte Carlo yield subsystem.
It measures

* fixed-budget MC throughput (samples/second) of the two-stage op-amp
  mismatch bench on the serial, thread and process backends -- and checks
  that the estimates stay bit-identical while the wall clock drops,
* the adaptive-stopping economics: samples spent on a deeply feasible
  design vs a marginal one at the same CI target, and
* estimator accuracy: the 256-sample Wilson interval must cover a
  high-resolution (1024-sample) reference estimate of the marginal design,

and emits one machine-readable ``BENCH_MC {json}`` line so CI can track
regressions, next to the usual human-readable summary.

The >= 3x process-vs-serial throughput expectation only applies on hosts
with at least four physical cores; below that the ratio is recorded but not
asserted.
"""

from __future__ import annotations

import os
import time

from repro.circuits import make_problem

from conftest import budget, record_bench, record_report

GOOD_TWO_STAGE = dict(w_diff=20e-6, l_diff=0.5e-6, w_load=10e-6, l_load=0.5e-6,
                      w_out=60e-6, l_out=0.3e-6, c_comp=2e-12, r_zero=2e3,
                      i_bias1=20e-6, i_bias2=100e-6)

#: Mean gain sits on the 60 dB spec, so the mismatch yield is ~0.5 (see
#: tests/test_mc.py) -- the worst case for both sampling cost and the
#: accuracy comparison.
MARGINAL_TWO_STAGE = dict(w_diff=2.0e-6, l_diff=0.18e-6, w_load=2.0e-6,
                          l_load=0.18e-6, w_out=20e-6, l_out=0.18e-6,
                          c_comp=0.8e-12, r_zero=3e3,
                          i_bias1=52e-6, i_bias2=150e-6)


def _mc_problem(n_samples: int, backend: str, adaptive: bool = False,
                **overrides):
    mc = {"n_max": n_samples, "n_min": min(32, n_samples),
          "batch_size": min(64, n_samples), "seed": 11,
          "ci_half_width": 0.05 if adaptive else None}
    mc.update(overrides)
    return make_problem("two_stage_opamp_yield", mc=mc, backend=backend,
                        max_workers=4)


def test_bench_mc():
    n_samples = budget(quick=256, paper=1024)

    # -- fixed-budget throughput per backend, bit-identity enforced ------ #
    seconds, estimates = {}, {}
    for backend in ("serial", "thread", "process"):
        with _mc_problem(n_samples, backend) as problem:
            if backend == "process":
                problem.simulate(GOOD_TWO_STAGE)  # warm the pool untimed
            start = time.perf_counter()
            estimates[backend] = problem.simulate(MARGINAL_TWO_STAGE)
            seconds[backend] = time.perf_counter() - start
    assert estimates["thread"] == estimates["serial"]
    assert estimates["process"] == estimates["serial"]
    yield_estimate = estimates["serial"]["yield"]
    process_speedup = seconds["serial"] / seconds["process"]

    # -- adaptive stopping: cheap vs marginal design --------------------- #
    with _mc_problem(n_samples, "serial", adaptive=True) as problem:
        easy_n = problem.simulate(GOOD_TWO_STAGE)["mc_samples"]
        marginal_n = problem.simulate(MARGINAL_TWO_STAGE)["mc_samples"]

    # -- accuracy: the budget estimate must cover a high-res reference --- #
    with _mc_problem(4 * n_samples, "thread") as problem:
        reference = problem.simulate(MARGINAL_TWO_STAGE)

    record = {
        "n_samples": n_samples,
        "yield": round(yield_estimate, 4),
        "ci_low": round(estimates["serial"]["yield_ci_low"], 4),
        "ci_high": round(estimates["serial"]["yield_ci_high"], 4),
        "reference_yield": round(reference["yield"], 4),
        "serial_s": round(seconds["serial"], 4),
        "thread_s": round(seconds["thread"], 4),
        "process_s": round(seconds["process"], 4),
        "serial_samples_per_s": round(n_samples / seconds["serial"], 1),
        "process_samples_per_s": round(n_samples / seconds["process"], 1),
        "process_speedup": round(process_speedup, 3),
        "adaptive_easy_samples": easy_n,
        "adaptive_marginal_samples": marginal_n,
        "cpu_count": os.cpu_count(),
    }
    record_bench("BENCH_MC", record)
    record_report(
        f"Monte Carlo mismatch ({n_samples} samples): yield "
        f"{yield_estimate:.3f} [{record['ci_low']:.3f}, {record['ci_high']:.3f}] "
        f"(reference {reference['yield']:.3f}); "
        f"{record['serial_samples_per_s']:.0f} samples/s serial, "
        f"{record['process_samples_per_s']:.0f} samples/s process "
        f"({process_speedup:.2f}x on {os.cpu_count()} cores); adaptive "
        f"stopping spent {easy_n:.0f} samples on the easy design vs "
        f"{marginal_n:.0f} on the marginal one")

    # Guard rails.  Accuracy: the budget interval must cover the high-res
    # reference estimate.  Economics: adaptive stopping must spend well
    # under half the marginal design's budget on the easy one.
    assert (estimates["serial"]["yield_ci_low"] <= reference["yield"]
            <= estimates["serial"]["yield_ci_high"])
    assert easy_n <= 0.5 * marginal_n
    # Throughput: process fan-out must deliver >= 3x with its 4 workers
    # when the host has comfortable parallel headroom (>= 8 logical CPUs).
    # On exactly-4-vCPU hosts -- e.g. shared CI runners, where 3x of the
    # ideal 4x leaves no room for pickling overhead plus noisy neighbours,
    # and logical CPUs may be 2 physical cores -- only a softer bar is
    # asserted; the record still carries the exact ratio for tracking.
    cpus = os.cpu_count() or 1
    if cpus >= 8:
        assert process_speedup >= 3.0
    elif cpus >= 4:
        assert process_speedup >= 2.0
    else:
        assert process_speedup > 0.2
